package sim

import (
	"container/heap"
	"sort"
)

// Event is a callback scheduled to fire at a virtual time. Events
// with equal times fire in insertion order (stable), which keeps the
// simulation deterministic regardless of map iteration or host
// scheduling.
//
// Events may be recycled through the queue's free list (see Release),
// so holders must drop their reference once an event has fired;
// Cancel is only valid for events still pending in the queue.
type Event struct {
	At   Cycles
	Kind string // diagnostic label, e.g. "timer", "nic-rx"
	Fire func()
	// Tag disambiguates events of one Kind for checkpoint restore: a
	// snapshot records (Kind, Tag) and the restore path rebuilds the
	// Fire closure from them (e.g. Kind "sleep-wake" + Tag pid). Zero
	// for singleton kinds.
	Tag uint64

	seq   uint64
	index int // heap index; -1 once popped or cancelled
}

// Cancelled reports whether the event has been removed from the queue
// (either fired or cancelled).
func (e *Event) Cancelled() bool { return e.index < 0 }

// KindTimer is the diagnostic kind of the periodic timer tick. The
// queue counts these separately: a machine whose only pending events
// are its own ticks can never make progress by itself (ticks wake
// nothing), which is how a cluster distinguishes "idle until the next
// wake/disk/packet event" from "stalled waiting for network input".
const KindTimer = "timer"

// EventQueue is a deterministic priority queue of events ordered by
// virtual time, breaking ties by insertion order. A free list recycles
// popped events so steady-state scheduling does not allocate.
type EventQueue struct {
	h      eventHeap
	seq    uint64
	free   []*Event
	timers int // pending events whose Kind is KindTimer
}

// NewEventQueue returns an empty queue.
func NewEventQueue() *EventQueue {
	return &EventQueue{}
}

// Len reports the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// Schedule enqueues fn to run at time at with a diagnostic kind label,
// returning the event so the caller can cancel it. The event is drawn
// from the free list when one is available.
func (q *EventQueue) Schedule(at Cycles, kind string, fn func()) *Event {
	return q.ScheduleTagged(at, kind, 0, fn)
}

// ScheduleTagged is Schedule with a restore tag (see Event.Tag).
func (q *EventQueue) ScheduleTagged(at Cycles, kind string, tag uint64, fn func()) *Event {
	q.seq++
	return q.insert(at, kind, tag, q.seq, fn)
}

// insert enqueues an event with an explicit sequence number, drawing
// from the free list when possible.
func (q *EventQueue) insert(at Cycles, kind string, tag, seq uint64, fn func()) *Event {
	var e *Event
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		e.At, e.Kind, e.Fire, e.Tag, e.seq = at, kind, fn, tag, seq
	} else {
		e = &Event{At: at, Kind: kind, Fire: fn, Tag: tag, seq: seq}
	}
	heap.Push(&q.h, e)
	if kind == KindTimer {
		q.timers++
	}
	return e
}

// PendingNonTimer reports how many pending events are anything other
// than the periodic timer tick. Zero means the queue holds nothing
// that could ever change task state on its own.
func (q *EventQueue) PendingNonTimer() int { return len(q.h) - q.timers }

// Release returns a fired (or cancelled) event to the free list for
// reuse by a later Schedule. Releasing an event that is back in the
// queue — its Fire rescheduled it — is a no-op, as is releasing nil.
// After Release the caller must drop its reference: the event will be
// handed out again and Cancel on a stale reference would remove the
// wrong entry.
func (q *EventQueue) Release(e *Event) {
	if e == nil || e.index >= 0 {
		return
	}
	e.Fire = nil
	q.free = append(q.free, e)
}

// Cancel removes e from the queue and returns it to the free list for
// reuse by a later Schedule, so start/stop cycles (NIC.StopFlood)
// allocate nothing in steady state. Cancelling an already-fired or
// already-cancelled event is a no-op. After Cancel the caller must
// drop its reference, exactly as after Release.
func (q *EventQueue) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&q.h, e.index)
	e.index = -1
	e.Fire = nil
	if e.Kind == KindTimer {
		q.timers--
	}
	q.free = append(q.free, e)
}

// PeekTime returns the time of the earliest pending event. ok is
// false when the queue is empty.
func (q *EventQueue) PeekTime() (at Cycles, ok bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].At, true
}

// Pop removes and returns the earliest event, or nil when empty.
func (q *EventQueue) Pop() *Event {
	if len(q.h) == 0 {
		return nil
	}
	e := heap.Pop(&q.h).(*Event)
	e.index = -1
	if e.Kind == KindTimer {
		q.timers--
	}
	return e
}

// EventImage is one pending event's serialisable identity: everything
// but the Fire closure, which a restore rebuilds from (Kind, Tag).
// Seq is preserved exactly because same-time events fire in sequence
// order — a restored queue must replay the identical tie-breaks.
type EventImage struct {
	At   Cycles
	Kind string
	Tag  uint64
	Seq  uint64
}

// QueueImage is an EventQueue's full serialisable state.
type QueueImage struct {
	// Events are the pending events in firing order.
	Events []EventImage
	// Seq is the queue's insertion counter: the next Schedule call on
	// a restored queue draws Seq+1, exactly as the original would.
	Seq uint64
	// FreeLen is the free-list population. Free events hold no live
	// state; restoring the count keeps a restored machine's allocation
	// behaviour aligned with the original's.
	FreeLen int
}

// Snapshot captures the queue's pending events (in firing order), its
// insertion counter, and its free-list population.
func (q *EventQueue) Snapshot() QueueImage {
	img := QueueImage{Seq: q.seq, FreeLen: len(q.free)}
	img.Events = make([]EventImage, len(q.h))
	for i, e := range q.h {
		img.Events[i] = EventImage{At: e.At, Kind: e.Kind, Tag: e.Tag, Seq: e.seq}
	}
	sort.Slice(img.Events, func(i, j int) bool {
		if img.Events[i].At != img.Events[j].At {
			return img.Events[i].At < img.Events[j].At
		}
		return img.Events[i].Seq < img.Events[j].Seq
	})
	return img
}

// RestoreInto rebuilds this (empty) queue from an image: each pending
// event is re-created with its exact original sequence number and the
// Fire closure the resolver returns for its (Kind, Tag). The heap's
// internal layout may differ from the original's, but pops compare
// (At, Seq) — a strict total order — so firing order is identical.
// The restored events are returned aligned with img.Events so callers
// can re-wire held event pointers (e.g. a NIC's pending rx event).
func (q *EventQueue) RestoreInto(img QueueImage, resolve func(kind string, tag uint64) func()) []*Event {
	out := make([]*Event, len(img.Events))
	for i, ei := range img.Events {
		out[i] = q.insert(ei.At, ei.Kind, ei.Tag, ei.Seq, resolve(ei.Kind, ei.Tag))
	}
	q.seq = img.Seq
	for len(q.free) < img.FreeLen {
		q.free = append(q.free, &Event{index: -1})
	}
	return out
}

// Reset empties the queue for reuse, moving pending events to the
// free list and zeroing the counters while keeping the heap's and
// free list's capacity — the restore-into-recycled-machine path uses
// it so rebuilding a queue allocates no fresh events.
func (q *EventQueue) Reset() {
	for _, e := range q.h {
		e.index = -1
		e.Fire = nil
		q.free = append(q.free, e)
	}
	q.h = q.h[:0]
	q.seq = 0
	q.timers = 0
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
