package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockDefaults(t *testing.T) {
	c := NewClock(0)
	if c.Freq() != DefaultCPUHz {
		t.Fatalf("Freq() = %d, want %d", c.Freq(), DefaultCPUHz)
	}
	if c.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", c.Now())
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock(1000)
	c.Advance(500)
	if c.Now() != 500 {
		t.Fatalf("Now() = %d, want 500", c.Now())
	}
	c.AdvanceTo(1500)
	if c.Now() != 1500 {
		t.Fatalf("Now() = %d, want 1500", c.Now())
	}
}

func TestClockAdvanceToPast(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo into the past did not panic")
		}
	}()
	c := NewClock(1000)
	c.Advance(10)
	c.AdvanceTo(5)
}

func TestClockSeconds(t *testing.T) {
	c := NewClock(2_000_000_000)
	if got := c.Seconds(1_000_000_000); got != 0.5 {
		t.Fatalf("Seconds = %v, want 0.5", got)
	}
	if got := c.Duration(2_000_000_000); got != time.Second {
		t.Fatalf("Duration = %v, want 1s", got)
	}
	if got := c.CyclesOf(250 * time.Millisecond); got != 500_000_000 {
		t.Fatalf("CyclesOf = %d, want 500000000", got)
	}
}

func TestClockRoundTripProperty(t *testing.T) {
	c := NewClock(DefaultCPUHz)
	f := func(ms uint16) bool {
		d := time.Duration(ms) * time.Millisecond
		cy := c.CyclesOf(d)
		back := c.Duration(cy)
		diff := back - d
		if diff < 0 {
			diff = -diff
		}
		return diff < time.Microsecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
