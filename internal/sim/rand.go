package sim

import "math/rand" //simlint:wallclock-ok deterministic seeded source only; rand.New is fed the splitmix64 source below

// Rand wraps a seeded deterministic source. All stochastic behaviour
// in the simulator (packet inter-arrival jitter, address selection,
// workload shuffling) must draw from one of these so runs replay
// exactly given the same seed.
type Rand struct {
	*rand.Rand
	// src is the generator behind Rand. Retaining it makes the
	// stream's entire mutable state (8 bytes) observable, which is
	// what lets a machine checkpoint capture and replay it exactly.
	src *source
}

// source is a splitmix64 generator: 8 bytes of state versus
// math/rand's ~5 KB lagged-Fibonacci table, which was the largest
// single allocation in machine construction. Output is a fixed
// function of the seed, so histories replay bit-for-bit across hosts.
type source struct {
	state uint64
}

func (s *source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *source) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *source) Seed(seed int64) { s.state = uint64(seed) }

// NewRand returns a deterministic source for the given seed.
func NewRand(seed int64) *Rand {
	src := &source{state: uint64(seed)}
	return &Rand{Rand: rand.New(src), src: src}
}

// State returns the stream's entire mutable state: the splitmix64
// counter. Two streams with equal state produce identical draws
// forever.
func (r *Rand) State() uint64 { return r.src.state }

// SetState overwrites the stream's state, aligning it with another
// stream's State() so the two replay identically from here on.
func (r *Rand) SetState(s uint64) { r.src.state = s }

// Clone returns an independent stream positioned at the same state:
// the clone and the original draw the same future values but do not
// affect each other.
func (r *Rand) Clone() *Rand {
	c := NewRand(0)
	c.src.state = r.src.state
	return c
}

// Jitter returns a value in [base - spread/2, base + spread/2),
// clamped at zero. It is used for event inter-arrival perturbation.
func (r *Rand) Jitter(base, spread Cycles) Cycles {
	if spread == 0 {
		return base
	}
	off := Cycles(r.Int63n(int64(spread)))
	lo := base - spread/2
	if base < spread/2 {
		lo = 0
	}
	return lo + off
}
