package sim

import "math/rand"

// Rand wraps a seeded math/rand source. All stochastic behaviour in
// the simulator (packet inter-arrival jitter, address selection,
// workload shuffling) must draw from one of these so runs replay
// exactly given the same seed.
type Rand struct {
	*rand.Rand
}

// NewRand returns a deterministic source for the given seed.
func NewRand(seed int64) *Rand {
	return &Rand{Rand: rand.New(rand.NewSource(seed))}
}

// Jitter returns a value in [base - spread/2, base + spread/2),
// clamped at zero. It is used for event inter-arrival perturbation.
func (r *Rand) Jitter(base, spread Cycles) Cycles {
	if spread == 0 {
		return base
	}
	off := Cycles(r.Int63n(int64(spread)))
	lo := base - spread/2
	if base < spread/2 {
		lo = 0
	}
	return lo + off
}
