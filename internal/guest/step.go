package guest

import (
	"errors"

	"repro/internal/proc"
	"repro/internal/sim"
)

// This file defines the resumable (flyweight) guest form: a guest
// written as an explicit state machine instead of a goroutine. A
// resumable guest is a Step function that, given its Context and the
// kernel's reply to its previous request, runs until it posts its
// next request and returns the continuation that will receive that
// request's reply. No goroutine, no parked stack: the guest's entire
// execution state is the continuation value plus whatever state the
// continuation closes over, which is what makes tasks cheap enough
// for 10k+ resident machines and (eventually) serialisable for
// checkpoint/fork.
//
// The contract for a Step activation:
//
//   - At most one request-posting Context call per activation, and it
//     must be the activation's last action. On the flyweight driver a
//     posting method only *posts*: it returns zero values, and the
//     real reply arrives in the next activation's Resume. Code after
//     the post would run before the request is serviced, so both
//     drivers forbid a second post in one activation.
//   - Pure reads (PID, Nice, Getenv, Setenv, Rand, NetAddr) never
//     post and may be used anywhere in an activation — but a Rand
//     draw after a post would reorder against the machine's own
//     draws on a blocking request, so keep those before the post too.
//   - Returning nil exits the task with code 0; Exit(code) works as
//     on the goroutine driver. A guest must not exit with a request
//     already posted in the same activation.
//   - Call/Call1/Exec are unavailable: library functions and program
//     images run arbitrary Routine code mid-call, which has no
//     resumable form. Guests that need them stay on the goroutine
//     driver.
//
// StepRoutine adapts a Step to the goroutine driver with the same
// contract enforced, so one guest source runs on either driver and —
// because both issue the identical request sequence — produces
// byte-identical machine histories.

// Resume carries the kernel's reply to the request posted by the
// previous activation. Which fields are meaningful depends on what
// was posted; the continuation knows, because it posted it.
type Resume struct {
	// OK is the request's boolean reply: carried for NetSend and
	// NetForward, frame presence for NetRecv, child presence for Wait
	// and FindProcess.
	OK bool
	// Ret is the request's integer reply: ClockNow's cycle count,
	// NetRx/NetRxWait's delivery total, Fork/SpawnThread/FindProcess's
	// pid.
	Ret uint64
	// Err is the request's error reply (Syscall, Ptrace, and the
	// injected-fault surface of NetSend/NetForward/NetRecv).
	Err error
	// Frame is NetRecv's received frame.
	Frame Frame
	// Wres is Wait's reaped child.
	Wres WaitResult
	// User and Sys are Usage's reply.
	User, Sys sim.Cycles
}

// Step is one activation of a resumable guest: run until the next
// kernel request is posted and return the continuation that receives
// its reply, or return nil to exit with code 0.
type Step func(ctx Context, r Resume) Step

// stepCompat adapts a Step to a blocking Context (the goroutine
// driver): each posting call is performed immediately and its reply
// stashed as the next activation's Resume, while the Step still sees
// the flyweight contract — zero return values and a panic on a
// second post — so a guest cannot accidentally depend on behaviour
// only one driver provides.
type stepCompat struct {
	ctx    Context
	next   Resume
	posted bool
}

var _ Context = (*stepCompat)(nil)

// mark records this activation's single allowed post and resets next
// so the reply fields the posting method is about to write land on a
// zeroed Resume — the same all-zero baseline the flyweight driver gets
// from its full request-literal assignment.
func (a *stepCompat) mark() {
	if a.posted {
		panic("guest: resumable guest posted two requests in one activation (a kernel request must be the activation's last action)")
	}
	a.posted = true
	a.next = Resume{}
}

func (a *stepCompat) PID() proc.PID            { return a.ctx.PID() }
func (a *stepCompat) Nice() int                { return a.ctx.Nice() }
func (a *stepCompat) Getenv(key string) string { return a.ctx.Getenv(key) }
func (a *stepCompat) Setenv(key, value string) { a.ctx.Setenv(key, value) }
func (a *stepCompat) Rand() *sim.Rand          { return a.ctx.Rand() }
func (a *stepCompat) NetAddr() Addr            { return a.ctx.NetAddr() }

func (a *stepCompat) Compute(d sim.Cycles) {
	if d == 0 {
		return // no kernel interaction on either driver
	}
	a.mark()
	a.ctx.Compute(d)
}

func (a *stepCompat) Load(addr uint64) {
	a.mark()
	a.ctx.Load(addr)
}

func (a *stepCompat) Store(addr uint64) {
	a.mark()
	a.ctx.Store(addr)
}

func (a *stepCompat) Syscall(name string) error {
	a.mark()
	a.next.Err = a.ctx.Syscall(name)
	return nil
}

func (a *stepCompat) Fork(name string, body Routine) proc.PID {
	a.mark()
	a.next.Ret = uint64(a.ctx.Fork(name, body))
	return 0
}

func (a *stepCompat) SpawnThread(name string, body Routine) proc.PID {
	a.mark()
	a.next.Ret = uint64(a.ctx.SpawnThread(name, body))
	return 0
}

func (a *stepCompat) Wait() (WaitResult, bool) {
	a.mark()
	a.next.Wres, a.next.OK = a.ctx.Wait()
	return WaitResult{}, false
}

func (a *stepCompat) Exit(code int) { a.ctx.Exit(code) }

func (a *stepCompat) Yield() {
	a.mark()
	a.ctx.Yield()
}

func (a *stepCompat) Sleep(d sim.Cycles) {
	a.mark()
	a.ctx.Sleep(d)
}

func (a *stepCompat) SetNice(n int) {
	a.mark()
	a.ctx.SetNice(n)
}

func (a *stepCompat) FindProcess(name string) (proc.PID, bool) {
	a.mark()
	pid, ok := a.ctx.FindProcess(name)
	a.next.Ret, a.next.OK = uint64(pid), ok
	return 0, false
}

func (a *stepCompat) Ptrace(req PtraceRequest, pid proc.PID, addr, data uint64) error {
	a.mark()
	a.next.Err = a.ctx.Ptrace(req, pid, addr, data)
	return nil
}

func (a *stepCompat) Usage() (user, system sim.Cycles) {
	a.mark()
	a.next.User, a.next.Sys = a.ctx.Usage()
	return 0, 0
}

func (a *stepCompat) ClockNow() sim.Cycles {
	a.mark()
	a.next.Ret = uint64(a.ctx.ClockNow())
	return 0
}

func (a *stepCompat) NetSend(f Frame) (bool, error) {
	a.mark()
	a.next.OK, a.next.Err = a.ctx.NetSend(f)
	return false, nil
}

func (a *stepCompat) NetForward(f Frame) (bool, error) {
	a.mark()
	a.next.OK, a.next.Err = a.ctx.NetForward(f)
	return false, nil
}

func (a *stepCompat) NetRecv() (Frame, bool, error) {
	a.mark()
	a.next.Frame, a.next.OK, a.next.Err = a.ctx.NetRecv()
	return Frame{}, false, nil
}

func (a *stepCompat) NetRx() uint64 {
	a.mark()
	a.next.Ret = a.ctx.NetRx()
	return 0
}

func (a *stepCompat) NetRxWait(seen uint64) uint64 {
	a.mark()
	a.next.Ret = a.ctx.NetRxWait(seen)
	return 0
}

func (a *stepCompat) Call(fn string, args ...uint64) uint64 {
	panic("guest: Call is unavailable to resumable guests (library code has no resumable form; use the goroutine driver)")
}

func (a *stepCompat) Call1(fn string, a0 uint64) uint64 {
	panic("guest: Call1 is unavailable to resumable guests (library code has no resumable form; use the goroutine driver)")
}

func (a *stepCompat) Exec(prog *Program) {
	panic("guest: Exec is unavailable to resumable guests (program images run Routine code; use the goroutine driver)")
}

// RunSteps drives a resumable guest to completion on a blocking
// Context, activation by activation. It is the goroutine-driver
// counterpart of the kernel's flyweight activation loop and enforces
// the identical contract, so the request sequence a guest issues is
// the same on both drivers by construction.
func RunSteps(ctx Context, s Step) {
	a := &stepCompat{ctx: ctx}
	for s != nil {
		a.posted = false
		// a.next is copied into the argument before the activation runs,
		// so the posting method overwriting it (via mark) is safe.
		next := s(a, a.next)
		if next != nil && !a.posted {
			panic("guest: resumable guest returned a continuation without posting a request (an activation must post or exit)")
		}
		if next == nil && a.posted {
			panic("guest: resumable guest exited with a request in flight")
		}
		s = next
	}
}

// StepRoutine adapts a resumable guest to the goroutine compat
// driver.
func StepRoutine(s Step) Routine {
	return func(ctx Context) { RunSteps(ctx, s) }
}

// RetryOp posts one attempt of a retried request. It must make
// exactly one posting Context call (the activation's last action).
type RetryOp func(Context)

// RetryDone receives the final attempt's Resume — success, a
// non-transient error, or the last transient error once the budget's
// deadline passed — and continues the guest.
type RetryDone func(Context, Resume) Step

// RetryStep is the resumable form of retryBackoff: it re-issues a
// transiently failing request with doubling virtual-time backoff
// until it succeeds or a deadline `budget` cycles out passes. Embed
// one in a guest's state struct and reuse it; Begin resets it. The
// zero-fault fast path posts exactly one request and reads no clock,
// matching the blocking wrappers cycle for cycle.
type RetryStep struct {
	op     RetryOp
	budget sim.Cycles
	done   RetryDone

	// self is the bound continuation, created once so steady-state
	// retries allocate nothing.
	self Step

	pc       int
	deadline sim.Cycles
	step     sim.Cycles
	last     Resume
}

// RetryStep program counter: which reply the next activation carries.
const (
	rsFirst = iota // the initial attempt's reply
	rsArm          // ClockNow reply; arm the deadline
	rsSleep        // backoff sleep finished; re-attempt
	rsRetry        // a retry attempt's reply
	rsClock        // ClockNow reply; deadline check
)

// Begin posts the first attempt and returns the continuation that
// runs the retry loop. Call it in tail position of an activation. op
// and done should be bound once by the caller (not fresh closures per
// Begin) to keep the hot path allocation-free.
func (s *RetryStep) Begin(ctx Context, op RetryOp, budget sim.Cycles, done RetryDone) Step {
	if s.self == nil {
		s.self = s.run
	}
	s.op, s.budget, s.done = op, budget, done
	s.pc = rsFirst
	op(ctx)
	return s.self
}

func (s *RetryStep) run(ctx Context, r Resume) Step {
	switch s.pc {
	case rsFirst:
		if r.Err == nil || s.budget == 0 || !transientErr(r.Err) {
			return s.done(ctx, r)
		}
		s.last = r
		s.pc = rsArm
		ctx.ClockNow()
		return s.self
	case rsArm:
		s.deadline = sim.Cycles(r.Ret) + s.budget
		s.step = s.budget / 16
		if s.step == 0 {
			s.step = 1
		}
		s.pc = rsSleep
		ctx.Sleep(s.step)
		return s.self
	case rsSleep:
		s.pc = rsRetry
		s.op(ctx)
		return s.self
	case rsRetry:
		if r.Err == nil || !transientErr(r.Err) {
			return s.done(ctx, r)
		}
		s.last = r
		s.pc = rsClock
		ctx.ClockNow()
		return s.self
	case rsClock:
		if sim.Cycles(r.Ret) >= s.deadline {
			return s.done(ctx, s.last)
		}
		if s.step < s.budget/2 {
			s.step *= 2
		}
		s.pc = rsSleep
		ctx.Sleep(s.step)
		return s.self
	}
	panic("guest: RetryStep continuation in invalid state")
}

// transientErr reports whether err is a retryable injected Errno,
// with the same classification retryBackoff uses.
func transientErr(err error) bool {
	var e Errno
	return errors.As(err, &e) && e.Transient()
}
