package guest

import "reflect"

// This file defines the fork protocol for resumable guests: how a
// checkpoint clones a flyweight guest's execution state. A resumable
// guest's entire state is its continuation (a Step, usually a method
// value bound to the guest's state struct) plus that struct's fields,
// so cloning is: deep-copy the struct, then return the clone's method
// value for the same continuation the original was parked on.
//
// Continuations cannot be compared directly (Go function values are
// not comparable), but a method value of the same method on two
// different receivers shares one code pointer — which is exactly the
// identity a fork needs: "which continuation is this?", independent
// of "whose state does it touch?". RebindStep matches on that.

// ForkFunc clones a resumable guest mid-flight: given the guest's
// current continuation, it returns the equivalent state of an
// independent copy. Implementations deep-copy the guest's state
// struct and rebind cur onto it (see RebindStep); they run between
// activations, so the guest is quiescent — no request is being
// posted while a ForkFunc runs.
type ForkFunc func(cur Step) (Forked, error)

// Forked is a cloned guest: the clone's continuation (equivalent to
// the one the original was parked on), its own ForkFunc so the clone
// can be forked again, and optionally the clone's state struct for
// the harvest layer to read results out of (e.g. a sender's stats).
type Forked struct {
	Step  Step
	Fork  ForkFunc
	State any
}

// RebindStep maps a continuation of one guest instance onto the
// equivalent continuation of a clone: old and new list the two
// instances' bound continuations in the same order, and cur is
// matched against old by code pointer. ok is false when cur matches
// none of them (the guest is parked on a continuation the fork
// support does not know about — a bug in the guest's fork wiring).
// Nil entries in old are skipped, so not-yet-bound slots (e.g. an
// un-Begun RetryStep's engine) list safely.
func RebindStep(cur Step, old, new []Step) (Step, bool) {
	cp := stepCode(cur)
	for i, o := range old {
		if o == nil {
			continue
		}
		if stepCode(o) == cp {
			return new[i], true
		}
	}
	return nil, false
}

// stepCode returns a Step's code pointer. Method values of the same
// method share one code pointer across receivers.
func stepCode(s Step) uintptr { return reflect.ValueOf(s).Pointer() }

// ForkInto copies this retry engine's in-flight state into dst (the
// clone's embedded RetryStep), rebinding the attempt and completion
// hooks to the clone's own bound closures, which the caller supplies
// by matching the original's op/done against its known hooks. The
// clone resumes the retry loop — backoff step, deadline, stashed
// last error — exactly where the original stands.
func (s *RetryStep) ForkInto(dst *RetryStep, op RetryOp, done RetryDone) {
	dst.op, dst.done = op, done
	dst.budget = s.budget
	dst.pc = s.pc
	dst.deadline = s.deadline
	dst.step = s.step
	dst.last = s.last
	if s.self != nil {
		dst.self = dst.run
	}
}

// Self returns the engine's bound loop continuation (nil before the
// first Begin). Fork implementations list it in RebindStep's old/new
// tables so a guest parked inside a retry loop rebinds onto the
// clone's loop.
func (s *RetryStep) Self() Step { return s.self }

// Op and Done expose the engine's bound hooks so a ForkFunc can
// match them against the guest's known closures and install the
// clone's equivalents via ForkInto.
func (s *RetryStep) Op() RetryOp     { return s.op }
func (s *RetryStep) Done() RetryDone { return s.done }

// SameOp reports whether two attempt hooks are the same bound
// closure (code-pointer identity, as RebindStep uses for Steps).
func SameOp(a, b RetryOp) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return reflect.ValueOf(a).Pointer() == reflect.ValueOf(b).Pointer()
}

// SameDone is SameOp for completion hooks.
func SameDone(a, b RetryDone) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return reflect.ValueOf(a).Pointer() == reflect.ValueOf(b).Pointer()
}
