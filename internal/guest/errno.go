package guest

import "repro/internal/sim"

// Errno is a simulated POSIX error number, the value an injected
// syscall fault surfaces to the guest. Only the errnos the fault
// layer injects are defined; the numeric values match Linux so logs
// read naturally.
type Errno int

// The injectable errnos. EAGAIN and ENOMEM are transient — a caller
// with a time budget should back off and retry — while EIO models a
// hard device failure that retrying will not fix.
const (
	EIO    Errno = 5
	EAGAIN Errno = 11
	ENOMEM Errno = 12
)

func (e Errno) Error() string {
	switch e {
	case EIO:
		return "EIO"
	case EAGAIN:
		return "EAGAIN"
	case ENOMEM:
		return "ENOMEM"
	default:
		return "errno(unknown)"
	}
}

// Transient reports whether the error is worth retrying: EAGAIN and
// ENOMEM clear themselves (a queue drains, memory frees), EIO does
// not.
func (e Errno) Transient() bool {
	return e == EAGAIN || e == ENOMEM
}

// retryBackoff blocks the caller through an exponential backoff
// sequence bounded by budget cycles of virtual time, re-invoking
// attempt until it reports success, a non-transient error, or the
// deadline. It is deliberately lazy about the clock: ClockNow is only
// read after a failed attempt, so a caller whose first attempt
// succeeds (every call under a zero-fault spec) performs exactly the
// syscalls it performed before the fault layer existed.
func retryBackoff(ctx Context, budget sim.Cycles, attempt func() error) error {
	err := attempt()
	if err == nil || budget == 0 {
		return err
	}
	if e, ok := err.(Errno); ok && !e.Transient() {
		return err
	}
	deadline := ctx.ClockNow() + budget
	step := budget / 16
	if step == 0 {
		step = 1
	}
	for {
		ctx.Sleep(step)
		err = attempt()
		if err == nil {
			return nil
		}
		if e, ok := err.(Errno); ok && !e.Transient() {
			return err
		}
		if ctx.ClockNow() >= deadline {
			return err
		}
		if step < budget/2 {
			step *= 2
		}
	}
}

// SendRetry is NetSend with a clock-driven retry budget: transient
// injected faults (EAGAIN/ENOMEM) are retried with exponential
// backoff for up to budget cycles of virtual time. carried reports
// the wire's verdict on the attempt that finally got through; err is
// the last injected fault when the budget ran out (or the fault was
// not transient). With no faults configured the cost is exactly one
// NetSend.
func SendRetry(ctx Context, f Frame, budget sim.Cycles) (carried bool, err error) {
	err = retryBackoff(ctx, budget, func() error {
		var e error
		carried, e = ctx.NetSend(f)
		return e
	})
	return carried, err
}

// ForwardRetry is NetForward with the same retry contract as
// SendRetry.
func ForwardRetry(ctx Context, f Frame, budget sim.Cycles) (carried bool, err error) {
	err = retryBackoff(ctx, budget, func() error {
		var e error
		carried, e = ctx.NetForward(f)
		return e
	})
	return carried, err
}

// RecvRetry is NetRecv with the same retry contract: an injected read
// fault is retried within budget, so a frame sitting in the receive
// buffer is eventually drained instead of stranded. ok is false only
// when the buffer is genuinely empty or the budget expired.
func RecvRetry(ctx Context, budget sim.Cycles) (f Frame, ok bool, err error) {
	err = retryBackoff(ctx, budget, func() error {
		var e error
		f, ok, e = ctx.NetRecv()
		return e
	})
	return f, ok, err
}

// SyscallRetry is Syscall with the same retry contract.
func SyscallRetry(ctx Context, name string, budget sim.Cycles) error {
	return retryBackoff(ctx, budget, func() error {
		return ctx.Syscall(name)
	})
}
