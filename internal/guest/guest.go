// Package guest defines the programming interface that simulated
// user programs are written against. A guest program is ordinary Go
// code (package workloads implements π, Whetstone, and an MD5
// brute-forcer this way) that performs all externally visible actions
// — consuming CPU cycles, touching memory, making system calls,
// calling shared-library functions — through a Context supplied by
// the kernel. The kernel charges virtual time for each action, so a
// program's accounted CPU usage is a deterministic function of the
// work it actually performs.
package guest

import (
	"repro/internal/device"
	"repro/internal/proc"
	"repro/internal/sim"
)

// Frame is one addressed network frame (see device.Frame): Src/Dst
// fabric addresses, a flow id, a payload size, and the ECN capability
// and congestion-experienced bits.
type Frame = device.Frame

// Addr is a fabric address (see device.Addr).
type Addr = device.Addr

// Routine is guest code: a program main, a thread body, a library
// constructor, or injected attack instructions.
type Routine func(Context)

// LibFunc is a shared-library function. Interposition (the paper's
// function-substitution attack) works because calls resolve through
// the dynamic linker's search order at call time. The args slice may
// alias a per-task scratch buffer: implementations must not retain it
// past the call, and its contents are only valid until the next
// library call on the same context.
type LibFunc func(ctx Context, args []uint64) uint64

// WaitResult describes a child-state change reported by Wait.
type WaitResult struct {
	PID proc.PID
	// Stopped is true when the child stopped (ptrace trap or
	// SIGSTOP) rather than exited.
	Stopped bool
	// ExitCode is valid when Stopped is false.
	ExitCode int
}

// Context is the guest's window onto the simulated machine. All
// methods may block in virtual time; none are safe to call after
// Exit. The kernel implements this interface.
type Context interface {
	// PID returns the calling task's pid.
	PID() proc.PID

	// Compute executes d cycles of user-mode instructions. The slice
	// may be preempted and resumed transparently; Compute returns
	// once d cycles of this task's execution have elapsed.
	Compute(d sim.Cycles)

	// Load performs a memory read at a virtual address. It may page-
	// fault (charged as system time) and may trigger a hardware
	// watchpoint if a tracer armed one.
	Load(addr uint64)

	// Store performs a memory write at a virtual address.
	Store(addr uint64)

	// Call invokes a shared-library function through the dynamic
	// linker (LD_PRELOAD honoured). It panics if the symbol is
	// undefined anywhere in the link map, mirroring a link failure.
	Call(fn string, args ...uint64) uint64

	// Call1 is Call for the one-argument case. It avoids
	// materialising a variadic slice per invocation, which matters
	// for allocator- and libm-heavy programs making hundreds of
	// thousands of library calls.
	Call1(fn string, a0 uint64) uint64

	// Syscall performs a generic kernel service of the named class
	// ("read", "write", "stat", ...), charging syscall entry/exit
	// plus the class's service time as system time. A non-nil error
	// is an injected Errno from the machine's FaultSpec: the kernel
	// performed (and billed) the full entry/service/exit path and
	// then failed the request, exactly like a driver-level EIO.
	Syscall(name string) error

	// Fork creates a child process that runs body and then exits.
	// Returns the child pid. The child inherits nice and env.
	Fork(name string, body Routine) proc.PID

	// SpawnThread creates a thread (a task sharing this process's
	// address space and thread group) running body.
	SpawnThread(name string, body Routine) proc.PID

	// Wait blocks until a child changes state (exits or stops) and
	// reaps exited children. ok is false when no children exist.
	Wait() (WaitResult, bool)

	// Exit terminates the calling task. It does not return.
	Exit(code int)

	// Yield relinquishes the CPU voluntarily (sched_yield).
	Yield()

	// Sleep blocks the task for d cycles of virtual wall time.
	Sleep(d sim.Cycles)

	// SetNice adjusts the calling task's nice value. Raising
	// priority (lowering nice) models a root-privileged attacker.
	SetNice(n int)

	// Nice reads the calling task's nice value (getpriority).
	Nice() int

	// Getenv reads the process environment.
	Getenv(key string) string

	// Setenv writes the calling process's environment (children
	// inherit it at fork) — how a designated shell arranges a
	// victim-specific LD_PRELOAD.
	Setenv(key, value string)

	// FindProcess returns the pid of a live process with the given
	// name, enabling runtime attacks (tracer, memory hog, fork
	// storm) to locate their victim as `ps` would.
	FindProcess(name string) (proc.PID, bool)

	// Rand returns the machine's deterministic random source.
	Rand() *sim.Rand

	// Ptrace issues a process-trace request, as used by the
	// execution-thrashing attack.
	Ptrace(req PtraceRequest, pid proc.PID, addr uint64, data uint64) error

	// Usage returns the calling task's own accounted CPU time under
	// the billing accountant, like getrusage(RUSAGE_SELF).
	Usage() (user, system sim.Cycles)

	// ClockNow reads the guest-visible monotonic clock — the
	// machine's current virtual cycle count, as
	// clock_gettime(CLOCK_MONOTONIC) would — charged as a gettime
	// syscall. Unlike Usage it advances while the task is off the
	// CPU, which is what lets a sender arm a real retransmission
	// timeout instead of counting its own poll ticks.
	ClockNow() sim.Cycles

	// NetSend transmits one addressed frame on the machine's NIC: the
	// kernel stamps f.Src with the machine's own fabric address and
	// resolves f.Dst through the NIC's routing table (a cluster
	// installs one entry per reachable machine). The kernel charges
	// the sendto syscall plus the driver tx path as system time. It
	// reports whether the frame was carried: false models
	// ENOBUFS/EHOSTUNREACH-style local drop feedback — no route, a
	// full queue on the wire, or a dead destination. A non-nil error
	// is an injected sendto fault (FaultSpec): the syscall was billed
	// but failed before reaching the driver, so the frame was never
	// offered to the wire and carried is false.
	NetSend(f Frame) (carried bool, err error)

	// NetForward retransmits a frame as-is — Src preserved — toward
	// f.Dst, the data plane of a forwarding router: the receiver of a
	// forwarded frame still sees the original sender and can ack it
	// across the hop. Charged like NetSend (sendto plus driver tx),
	// with the same injected-fault semantics.
	NetForward(f Frame) (carried bool, err error)

	// NetRecv pops the next received frame from the kernel's
	// bounded receive buffer (charged as a read syscall). ok is
	// false when the buffer is empty. Local flood packets and
	// payload-less injections deliver interrupts but queue no frame.
	// A non-nil error is an injected read fault: the syscall was
	// billed, ok is false, and any buffered frame stays queued for
	// the next attempt — err, not ok, distinguishes "fault" from
	// "drained", so pollers must not treat a faulted read as empty.
	NetRecv() (f Frame, ok bool, err error)

	// NetAddr reads the machine's own fabric address (zero outside
	// any fabric). A forwarding daemon uses it to consume frames
	// addressed to itself instead of re-routing them.
	NetAddr() Addr

	// NetRx reads the total frames the machine's NIC has delivered
	// (a packet-socket statistics read, charged as a syscall).
	NetRx() uint64

	// NetRxWait blocks until the NIC has delivered more than seen
	// frames, then returns the new total. A responder daemon pairs it
	// with NetSend to acknowledge traffic, which is what lets a
	// cluster express ack-paced flows whose rate is shaped by the
	// receiver's responsiveness.
	NetRxWait(seen uint64) uint64

	// Exec replaces the task's image with prog, as execve does: the
	// kernel charges image load and dynamic-linking time, library
	// constructors run, then prog.Main, then destructors. Exec
	// returns when the program completes (the task then exits unless
	// the caller continues).
	Exec(prog *Program)
}

// PtraceRequest enumerates the ptrace operations the thrashing attack
// needs (Section IV-B2).
type PtraceRequest int

const (
	// PtraceAttach attaches to a process and stops it with SIGSTOP.
	PtraceAttach PtraceRequest = iota + 1
	// PtraceCont resumes a stopped tracee.
	PtraceCont
	// PtracePokeUser writes a tracee debug register: addr selects
	// DR0 (watch address) or DR7 (enable), data is the value.
	PtracePokeUser
	// PtraceDetach detaches and resumes the tracee.
	PtraceDetach
)

func (r PtraceRequest) String() string {
	switch r {
	case PtraceAttach:
		return "PTRACE_ATTACH"
	case PtraceCont:
		return "PTRACE_CONT"
	case PtracePokeUser:
		return "PTRACE_POKEUSER"
	case PtraceDetach:
		return "PTRACE_DETACH"
	default:
		return "PTRACE_UNKNOWN"
	}
}

// Debug register selectors for PtracePokeUser's addr argument,
// mirroring offsetof(struct user, u_debugreg[N]).
const (
	DR0 uint64 = 0
	DR7 uint64 = 7
)

// Program is an executable image: what execve loads. Content stands
// in for the binary's bytes; the integrity subsystem hashes it, so
// two programs with the same name but different behaviour measure
// differently.
type Program struct {
	Name string
	// Content is a stable description of the program's code used
	// for integrity measurement.
	Content string
	// Libs are the shared libraries linked at startup, by name.
	Libs []string
	// Main is the program entry point, invoked after the dynamic
	// linker finishes and library constructors run.
	Main Routine
}
