// Quickstart: meter one job on the simulated machine and compare the
// three accounting schemes' views of the same execution.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Run the Whetstone benchmark at 2% of paper scale (~3 virtual
	// seconds) on a clean machine: no attacks, honest provider.
	out, err := cpumeter.Meter(cpumeter.JobSpec{
		Workload: "W",
		Options:  cpumeter.Options{Scale: 0.02},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Metered %q: elapsed %.2f virtual seconds, output %q\n\n",
		out.Spec.Workload, out.ElapsedSec, out.Result.Output)

	fmt.Println("scheme          user(s)  system(s)  total(s)")
	for _, scheme := range []string{"jiffy", "tsc", "process-aware"} {
		fmt.Printf("%-14s %8.3f  %9.3f  %8.3f\n",
			scheme, out.Victim.User[scheme], out.Victim.Sys[scheme], out.Victim.Total(scheme))
	}

	fmt.Println("\nWith no attack in progress, the commodity jiffy scheme and the")
	fmt.Println("TSC ground truth agree to within a tick — the paper's attacks are")
	fmt.Println("what drives them apart (see examples/attack-gallery).")
}
