// Trusted billing: the same attacks as the gallery, but billed from
// the paper's proposed fine-grained, process-aware scheme instead of
// tick sampling. The metering-level attacks (scheduling, interrupt
// and exception flooding) lose their effect entirely; the code-level
// attacks still consume real cycles in the job's context but are
// caught by the source-integrity layer (see examples/billing-audit).
//
//	go run ./examples/trusted-billing
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	opts := cpumeter.Options{Scale: 0.02}

	base, err := cpumeter.Meter(cpumeter.JobSpec{Workload: "W", Options: opts})
	if err != nil {
		log.Fatal(err)
	}
	legacyBase := base.Victim.Total(cpumeter.LegacyScheme)
	trustedBase := base.Victim.Total(cpumeter.TrustedScheme)

	fmt.Printf("victim: Whetstone — honest bill: legacy %.2f s, trusted %.2f s\n\n", legacyBase, trustedBase)
	fmt.Println("attack                                   legacy bill   trusted bill   legacy infl.  trusted infl.")

	for _, attack := range cpumeter.AllAttacks(opts.Freq) {
		out, err := cpumeter.Meter(cpumeter.JobSpec{Workload: "W", Attack: attack, Options: opts})
		if err != nil {
			log.Fatal(err)
		}
		legacy := out.Victim.Total(cpumeter.LegacyScheme)
		trusted := out.Victim.Total(cpumeter.TrustedScheme)
		fmt.Printf("%-40s %10.2fs %13.2fs %12.1f%% %13.1f%%\n",
			attack.Name(), legacy, trusted,
			(legacy-legacyBase)/legacyBase*100,
			(trusted-trustedBase)/trustedBase*100)
	}

	fmt.Println("\nThe trusted scheme attributes exact cycles at context-switch")
	fmt.Println("granularity and diverts interrupt-handler time to a system")
	fmt.Println("account, so sampling and attribution attacks stop paying.")
	fmt.Println("Launch-time code injection still shows as inflation here —")
	fmt.Println("it runs real cycles inside the job — and is rejected by the")
	fmt.Println("source-integrity audit instead (examples/billing-audit).")
}
