// Attack gallery: run every attack from the paper against the same
// victim and show how each inflates the billed (tick-sampled) CPU
// time relative to an honest baseline, while the TSC ground truth
// exposes what the victim really consumed.
//
//	go run ./examples/attack-gallery
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	opts := cpumeter.Options{Scale: 0.02}

	base, err := cpumeter.Meter(cpumeter.JobSpec{Workload: "W", Options: opts})
	if err != nil {
		log.Fatal(err)
	}
	baseBilled := base.Victim.Total("jiffy")
	fmt.Printf("victim: Whetstone, honest baseline bill %.2f s\n\n", baseBilled)
	fmt.Println("attack                                   billed(s)  truth(s)  inflation  traps  majfaults")

	for _, attack := range cpumeter.AllAttacks(opts.Freq) {
		out, err := cpumeter.Meter(cpumeter.JobSpec{Workload: "W", Attack: attack, Options: opts})
		if err != nil {
			log.Fatal(err)
		}
		billed := out.Victim.Total("jiffy")
		truth := out.Victim.Total("tsc")
		fmt.Printf("%-40s %9.2f %9.2f %9.1f%% %6d %10d\n",
			attack.Name(), billed, truth, (billed-baseBilled)/baseBilled*100,
			out.VictimStats.TraceStops, out.VictimStats.MajorFaults)
	}

	fmt.Println("\nEvery attack respects the paper's threat model: the kernel is")
	fmt.Println("untouched, the victim binary is unmodified, and the victim's")
	fmt.Println("output is still correct — yet the bill grows.")
}
