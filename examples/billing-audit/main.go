// Billing audit: the customer's side of the protocol. She profiles
// her job once on her own (simulated) platform, harvesting a
// reference profile and a code-identity manifest. The provider then
// bills her for runs that were silently attacked; each attested
// report is audited and rejected, with the violated trust property
// named — source integrity, execution integrity, or fine-grained
// metering (Section VI-B of the paper).
//
//	go run ./examples/billing-audit
package main

import (
	"fmt"
	"log"

	"repro"
)

const (
	aik   = "provider-platform-aik" // trusted via TPM cert chain
	nonce = "challenge-7f3a"        // fresh per billing query
)

func main() {
	opts := cpumeter.Options{Scale: 0.02}

	// --- Customer side: reference run on her own platform. ---
	ref, err := cpumeter.Meter(cpumeter.JobSpec{Workload: "P", Options: opts})
	if err != nil {
		log.Fatal(err)
	}
	manifest := cpumeter.ManifestFromReference(ref)
	profile := &cpumeter.Profile{
		UserSec: ref.Victim.User["tsc"],
		SysSec:  ref.Victim.Sys["tsc"],
	}
	fmt.Printf("reference: pi digits %q..., profile %.2fs user / %.2fs system\n",
		ref.Result.Output[:12], profile.UserSec, profile.SysSec)
	fmt.Printf("manifest allows: %v\n\n", manifest.Names())

	auditor := &cpumeter.Auditor{
		Manifest:  manifest,
		Reference: profile,
		AIKSeed:   aik,
		Nonce:     nonce,
	}

	// --- Provider side: runs the job, some honestly, some not. ---
	cases := []struct {
		label  string
		attack cpumeter.Attack
	}{
		{"honest run", nil},
		{"shell-patched launch", pick("shell", opts)},
		{"LD_PRELOAD constructor", pick("ctor", opts)},
		{"ptrace thrashing", pick("thrash", opts)},
		{"fork-storm scheduling", pick("sched", opts)},
	}
	for _, tc := range cases {
		out, err := cpumeter.Meter(cpumeter.JobSpec{Workload: "P", Attack: tc.attack, Options: opts})
		if err != nil {
			log.Fatal(err)
		}
		report, err := cpumeter.BuildReport(out, cpumeter.LegacyScheme, aik, nonce)
		if err != nil {
			log.Fatal(err)
		}
		verdict := auditor.Audit(report)

		status := "ACCEPT"
		if !verdict.Trustworthy {
			status = "REJECT"
		}
		fmt.Printf("%-24s bill %6.2fs  -> %s", tc.label, report.Billed.Total(), status)
		if verdict.OverchargeSec > 0 {
			fmt.Printf("  (overcharge ≈ %.2fs)", verdict.OverchargeSec)
		}
		fmt.Println()
		for _, f := range verdict.Violations() {
			fmt.Printf("    %s\n", f)
		}
	}
}

// pick returns the named attack at default strength.
func pick(key string, opts cpumeter.Options) cpumeter.Attack {
	for _, a := range cpumeter.AllAttacks(opts.Freq) {
		if a.Key() == key {
			return a
		}
	}
	log.Fatalf("no attack %q", key)
	return nil
}
