package main

import (
	"os"
	"strings"
	"testing"
)

// TestClusterFlagValidation pins the cluster-mode hardening: bad
// input yields a usage error naming the problem instead of a panic or
// a silently degenerate run.
func TestClusterFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown victim workload", []string{"cluster", "-victims", "0"}, "unknown victim workload"},
		{"empty victims", []string{"cluster", "-victims", " , "}, "no victims"},
		{"negative pps", []string{"cluster", "-pps", "-5"}, "negative"},
		{"zero latency", []string{"cluster", "-latency-us", "0"}, "must be > 0"},
		{"negative latency", []string{"cluster", "-latency-us", "-10"}, "must be > 0"},
		{"negative link pps", []string{"cluster", "-link-pps", "-1"}, ">= 0"},
		{"negative queue depth", []string{"cluster", "-queue-depth", "-2"}, ">= 0"},
		{"red-max without red-min", []string{"cluster", "-red-max", "16"}, "without -red-min"},
		{"red-maxp without red-min", []string{"cluster", "-red-maxp", "80"}, "without -red-min"},
		{"negative red-min", []string{"cluster", "-red-min", "-3"}, "-red-min"},
		{"red-maxp out of range", []string{"cluster", "-red-min", "8", "-red-maxp", "200"}, "1..100"},
		{"red with lossless", []string{"cluster", "-red-min", "8", "-lossless"}, "-lossless"},
		{"inverted red thresholds", []string{"cluster", "-red-min", "30", "-red-max", "8"}, "MinDepth"},
		{"red-weight without red-min", []string{"cluster", "-red-weight", "6"}, "without -red-min"},
		{"red-weight out of range", []string{"cluster", "-red-min", "8", "-red-weight", "20"}, "0..16"},
		{"unknown qdisc", []string{"cluster", "-qdisc", "wfq"}, "unknown -qdisc"},
		{"quantum without drr", []string{"cluster", "-quantum-bytes", "512"}, "requires -qdisc drr"},
		{"negative quantum", []string{"cluster", "-qdisc", "drr", "-quantum-bytes", "-1"}, "negative"},
		{"drr with lossless", []string{"cluster", "-qdisc", "drr", "-lossless"}, "-lossless"},
	}
	for _, tc := range cases {
		err := run(tc.args)
		if err == nil {
			t.Errorf("%s: run(%v) accepted", tc.name, tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestChaosFlagValidation pins the chaos-mode hardening: malformed
// fault probabilities, crash schedules, and flap windows all yield
// usage errors naming the flag before any machine is built.
func TestChaosFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"negative fault ppm", []string{"chaos", "-fault-ppm", "-1"}, "0..1000000"},
		{"fault ppm over scale", []string{"chaos", "-fault-ppm", "2000000"}, "0..1000000"},
		{"syscalls without ppm", []string{"chaos", "-fault-syscalls", "sendto"}, "without -fault-ppm"},
		{"errno without ppm", []string{"chaos", "-fault-errno", "eio"}, "without -fault-ppm"},
		{"unknown errno", []string{"chaos", "-fault-ppm", "100", "-fault-errno", "ebadf"}, "unknown -fault-errno"},
		{"empty syscall entry", []string{"chaos", "-fault-ppm", "100", "-fault-syscalls", "sendto,,read"}, "empty entry"},
		{"typo'd syscall name", []string{"chaos", "-fault-ppm", "100", "-fault-syscalls", "sendto,sendot"}, "not a known syscall"},
		{"negative crash time", []string{"chaos", "-crash-at", "-1"}, ">= 0"},
		{"negative restart time", []string{"chaos", "-crash-at", "1", "-restart-after", "-0.5"}, ">= 0"},
		{"restart without crash", []string{"chaos", "-restart-after", "0.5"}, "requires -crash-at"},
		{"crash past horizon", []string{"chaos", "-scale", "0.01", "-crash-at", "1000"}, "past the scenario horizon"},
		{"flap wrong arity", []string{"chaos", "-flap", "0.5:0.1"}, "first:down:up"},
		{"flap non-numeric", []string{"chaos", "-flap", "a:b:c"}, "non-negative number"},
		{"flap negative component", []string{"chaos", "-flap", "0.5:-0.1:0.4"}, "non-negative number"},
		{"flap zero down window", []string{"chaos", "-flap", "0.5:0:0.4"}, "zero down window"},
		{"negative pps", []string{"chaos", "-pps", "-5"}, "negative"},
		{"zero latency", []string{"chaos", "-latency-us", "0"}, "must be > 0"},
	}
	for _, tc := range cases {
		err := run(tc.args)
		if err == nil {
			t.Errorf("%s: run(%v) accepted", tc.name, tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestChaosModeRunsAtTinyScale smokes the whole chaos path — faults,
// crash+reboot, and a flapping egress at once — and relies on
// runChaos's own exit-nonzero ledger check for the integrity assert.
func TestChaosModeRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	args := []string{"chaos", "-scale", "0.01", "-pps", "10000",
		"-fault-ppm", "20000", "-crash-at", "0.15", "-restart-after", "0.08",
		"-flap", "0.1:0.03:0.1"}
	if err := run(args); err != nil {
		t.Fatalf("run(%v) = %v", args, err)
	}
}

// TestParseVictimsAlternatesBilling pins the victim expansion rule.
func TestParseVictimsAlternatesBilling(t *testing.T) {
	vs, err := parseVictims("O, W ,B")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 {
		t.Fatalf("parsed %d victims, want 3", len(vs))
	}
	wantBilling := []string{"jiffy", "process-aware", "jiffy"}
	wantWork := []string{"O", "W", "B"}
	for i, v := range vs {
		if v.Workload != wantWork[i] || v.Billing != wantBilling[i] {
			t.Errorf("victim %d = %s/%s, want %s/%s", i, v.Workload, v.Billing, wantWork[i], wantBilling[i])
		}
	}
}

// TestProfileFlagValidation pins the pprof plumbing's up-front path
// check: an unwritable -cpuprofile/-memprofile destination is a usage
// error before any machine is built, not a failure after the run.
func TestProfileFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad cpuprofile path", []string{"meter", "O", "-scale", "0.001", "-cpuprofile", "/nonexistent-dir/cpu.pb"}, "-cpuprofile"},
		{"bad memprofile path", []string{"meter", "O", "-scale", "0.001", "-memprofile", "/nonexistent-dir/mem.pb"}, "-memprofile"},
	}
	for _, tc := range cases {
		err := run(tc.args)
		if err == nil {
			t.Errorf("%s: run(%v) accepted", tc.name, tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestProfileFlagsWriteProfiles smokes the pprof plumbing end to end:
// a tiny metering run with both profiles requested leaves two
// non-empty profile files behind.
func TestProfileFlagsWriteProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	cpu := dir + "/cpu.pb.gz"
	mem := dir + "/mem.pb.gz"
	args := []string{"meter", "O", "-scale", "0.01", "-cpuprofile", cpu, "-memprofile", mem}
	if err := run(args); err != nil {
		t.Fatalf("run(%v) = %v", args, err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile %s not written: %v", path, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}

// TestUnknownCommandAndMissingArgs covers the entry-point errors.
func TestUnknownCommandAndMissingArgs(t *testing.T) {
	for _, args := range [][]string{nil, {"bogus"}, {"run"}, {"meter"}} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

// TestClusterModeRunsAtTinyScale smokes the whole cluster path with
// valid flags, including the new wire-shaping ones.
func TestClusterModeRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	args := []string{"cluster", "-victims", "O", "-pps", "5000", "-scale", "0.005",
		"-link-pps", "20000", "-queue-depth", "32"}
	if err := run(args); err != nil {
		t.Fatalf("run(%v) = %v", args, err)
	}
}

// TestClusterModeRunsDRRWithEWMARed smokes the qdisc flags end to
// end: a DRR wire with an EWMA RED policy and an explicit quantum.
func TestClusterModeRunsDRRWithEWMARed(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	args := []string{"cluster", "-victims", "O", "-pps", "5000", "-scale", "0.005",
		"-link-pps", "20000", "-queue-depth", "32", "-qdisc", "drr", "-quantum-bytes", "3000",
		"-red-min", "8", "-red-max", "24", "-red-weight", "6"}
	if err := run(args); err != nil {
		t.Fatalf("run(%v) = %v", args, err)
	}
}

// TestSnapshotResumeFlagValidation pins the checkpoint verbs'
// hardening: missing paths, malformed manifests, and negative knobs
// all yield usage errors naming the problem before any machine runs
// to completion.
func TestSnapshotResumeFlagValidation(t *testing.T) {
	dir := t.TempDir()
	writeFile := func(name, content string) string {
		t.Helper()
		p := dir + "/" + name
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	notJSON := writeFile("garbage.json", "{not json")
	wrongKind := writeFile("wrong.json", `{"kind":"something-else","seed":1,"warmup_cycles":100}`)
	zeroBarrier := writeFile("zero.json", `{"kind":"forklab-checkpoint","seed":1,"warmup_cycles":0}`)

	cases := []struct {
		name string
		args []string
		want string
	}{
		{"snapshot without out", []string{"snapshot"}, "-out is required"},
		{"snapshot negative rounds", []string{"snapshot", "-out", dir + "/m.json", "-rounds", "-1"}, ">= 0"},
		{"snapshot negative pps", []string{"snapshot", "-out", dir + "/m.json", "-pps", "-5"}, ">= 0"},
		{"snapshot negative warmup", []string{"snapshot", "-out", dir + "/m.json", "-warmup", "-0.5"}, ">= 0"},
		{"resume without from", []string{"resume"}, "-from is required"},
		{"resume missing file", []string{"resume", "-from", dir + "/absent.json"}, "no such file"},
		{"resume malformed manifest", []string{"resume", "-from", notJSON}, "parse"},
		{"resume wrong manifest kind", []string{"resume", "-from", wrongKind}, "not a fork-lab checkpoint manifest"},
		{"resume zero barrier", []string{"resume", "-from", zeroBarrier}, "zero warmup barrier"},
		{"resume negative pps", []string{"resume", "-from", zeroBarrier, "-pps", "-1"}, ">= 0"},
	}
	for _, tc := range cases {
		err := run(tc.args)
		if err == nil {
			t.Errorf("%s: run(%v) accepted", tc.name, tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestSnapshotResumeRoundTrip smokes the full checkpoint surface: the
// snapshot verb warms and checkpoints the fork lab, writing a replay
// manifest; the resume verb replays it, restores an independent fork,
// and runs the fork to completion.
func TestSnapshotResumeRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	manifest := t.TempDir() + "/checkpoint.json"
	if err := run([]string{"snapshot", "-out", manifest}); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := run([]string{"resume", "-from", manifest}); err != nil {
		t.Fatalf("resume: %v", err)
	}
	// A barrier past the whole run is refused, not silently forked.
	if err := run([]string{"snapshot", "-out", manifest, "-warmup", "1000"}); err == nil ||
		!strings.Contains(err.Error(), "warmup finished before") {
		t.Fatalf("past-end warmup = %v, want a warmup-finished error", err)
	}
}
