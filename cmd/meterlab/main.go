// Command meterlab regenerates the paper's evaluation artifacts on
// the simulated machine.
//
// Usage:
//
//	meterlab list
//	meterlab run <artifact> [flags]     one of figure4..figure11, comparison, mitigation, cluster
//	meterlab all [flags]                every artifact in order
//	meterlab meter <O|P|W|B> [flags]    meter one job and print all schemes
//	meterlab cluster [flags]            run one cross-machine flood scenario:
//	                                    an attacker machine floods victim
//	                                    machines over modeled links
//
// Flags:
//
//	-scale f      victim/attack scale, 1.0 = paper scale (default 1.0)
//	-seed n       simulation seed (default 2010)
//	-hz n         timer ticks per second (default 250)
//	-sched s      scheduler policy: o1 or cfs (default o1)
//	-parallel n   campaign worker-pool size (0 = all cores, 1 = sequential);
//	              'all' applies it at both fan-out levels — across artifacts
//	              and across each artifact's machines — so up to n*n machines
//	              may be live at once
//	-attack k     (meter only) arm one attack: shell ctor subst sched thrash irqflood excflood
//	-pps n        (cluster only) flood rate per victim link (default 40000)
//	-latency-us n (cluster only) one-way link latency (default 500)
//	-victims s    (cluster only) victim workloads, e.g. "O,O" (default "O,O";
//	              the first victim bills jiffy, the second process-aware)
//
// Output is byte-identical at every -parallel setting; only the host
// wall-clock changes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/attacks"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "meterlab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: meterlab list | run <artifact> | all | meter <O|P|W|B> | cluster")
	}
	cmd, rest := args[0], args[1:]

	fs := flag.NewFlagSet("meterlab", flag.ContinueOnError)
	scale := fs.Float64("scale", 1.0, "victim/attack scale (1.0 = paper scale)")
	seed := fs.Int64("seed", 2010, "simulation seed")
	hz := fs.Uint64("hz", 250, "timer ticks per second")
	sched := fs.String("sched", "o1", "scheduler policy: o1 or cfs")
	parallel := fs.Int("parallel", 0, "campaign worker-pool size; 'all' fans out across artifacts and machines, up to n*n live machines (0 = all cores, 1 = sequential)")
	attackKey := fs.String("attack", "", "attack to arm for 'meter'")
	pps := fs.Uint64("pps", 40_000, "flood rate per victim link for 'cluster'")
	latencyUs := fs.Uint64("latency-us", 500, "one-way link latency for 'cluster'")
	victims := fs.String("victims", "O,O", "victim workloads for 'cluster' (comma-separated)")

	switch cmd {
	case "list":
		for _, id := range cpumeter.Experiments() {
			fmt.Println(id)
		}
		return nil

	case "run", "all", "meter", "cluster":
		target := ""
		if cmd == "run" || cmd == "meter" {
			if len(rest) == 0 {
				return fmt.Errorf("%s: missing argument", cmd)
			}
			target, rest = rest[0], rest[1:]
		}
		if err := fs.Parse(rest); err != nil {
			return err
		}
		opts := cpumeter.Options{
			Seed:            *seed,
			HZ:              *hz,
			SchedulerPolicy: *sched,
			Scale:           *scale,
			Parallelism:     *parallel,
		}
		switch cmd {
		case "run":
			return runArtifact(target, opts)
		case "all":
			return runAllArtifacts(opts)
		case "cluster":
			return runCluster(*victims, *pps, *latencyUs, opts)
		default:
			return meterJob(target, *attackKey, opts)
		}

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// runCluster executes one custom cross-machine flood scenario and
// prints every victim host's bill under its own billing scheme (the
// first victim bills jiffy, the second process-aware, alternating).
func runCluster(victims string, pps, latencyUs uint64, opts cpumeter.Options) error {
	billing := []string{"jiffy", "process-aware"}
	var vs []cpumeter.ClusterVictim
	for _, w := range strings.Split(victims, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		vs = append(vs, cpumeter.ClusterVictim{Workload: w, Billing: billing[len(vs)%len(billing)]})
	}
	if len(vs) == 0 {
		return fmt.Errorf("cluster: no victims in %q", victims)
	}
	start := time.Now()
	out, err := cpumeter.MeterCluster(cpumeter.ClusterRunSpec{
		Opts:          opts,
		Victims:       vs,
		FloodPPS:      pps,
		LinkLatencyUs: latencyUs,
	})
	if err != nil {
		return err
	}
	fmt.Printf("cluster: 1 attacker + %d victim machines, %d pps per link, %d us link latency (elapsed %.1f virtual s)\n",
		len(vs), pps, latencyUs, out.ElapsedSec)
	for i, v := range out.Victims {
		fmt.Printf("  victim %d (%s, bills %s): sent %d frames, received %d\n",
			i+1, v.Run.Spec.Workload, v.Billing, out.PacketsSent[i], v.PacketsReceived)
		for _, scheme := range []string{"jiffy", "tsc", "process-aware"} {
			marker := " "
			if scheme == v.Billing {
				marker = "*"
			}
			fmt.Printf("   %s%-14s user %8.2fs  system %7.2fs  total %8.2fs\n",
				marker, scheme, v.Run.Victim.User[scheme], v.Run.Victim.Sys[scheme], v.Run.Victim.Total(scheme))
		}
		fmt.Printf("    system account (process-aware IRQ bucket): %.2f s\n", v.Run.SystemAccountSec)
	}
	fmt.Printf("  (regenerated in %.1fs host time)\n", time.Since(start).Seconds())
	return nil
}

func runArtifact(id string, opts cpumeter.Options) error {
	start := time.Now()
	fig, err := cpumeter.Reproduce(id, opts)
	if err != nil {
		return fmt.Errorf("reproduce %s: %w", id, err)
	}
	fmt.Print(fig.Render())
	fmt.Printf("  (regenerated in %.1fs host time)\n\n", time.Since(start).Seconds())
	return nil
}

// runAllArtifacts regenerates every artifact through the parallel
// campaign engine and prints each with its own regeneration time, so
// speedups are visible without the bench harness.
func runAllArtifacts(opts cpumeter.Options) error {
	start := time.Now()
	runs, err := cpumeter.ReproduceAllTimed(nil, opts)
	if err != nil {
		return err
	}
	for _, r := range runs {
		fmt.Print(r.Figure.Render())
		fmt.Printf("  (regenerated in %.1fs host time)\n\n", r.Elapsed.Seconds())
	}
	var artifactSec float64
	for _, r := range runs {
		artifactSec += r.Elapsed.Seconds()
	}
	fmt.Printf("%d artifacts in %.1fs wall time (%.1fs summed artifact time)\n",
		len(runs), time.Since(start).Seconds(), artifactSec)
	return nil
}

func meterJob(workload, attackKey string, opts cpumeter.Options) error {
	var attack cpumeter.Attack
	if attackKey != "" {
		freq := opts.Freq
		if freq == 0 {
			freq = cpumeter.DefaultCPUHz
		}
		for _, a := range attacks.All(freq) {
			if a.Key() == attackKey {
				attack = a
			}
		}
		if attack == nil {
			return fmt.Errorf("unknown attack %q", attackKey)
		}
	}
	out, err := cpumeter.Meter(cpumeter.JobSpec{Workload: workload, Attack: attack, Options: opts})
	if err != nil {
		return err
	}
	fmt.Printf("job %s", workload)
	if attack != nil {
		fmt.Printf(" under %s", attack.Name())
	}
	fmt.Printf(" (elapsed %.1f virtual s)\n", out.ElapsedSec)
	for _, scheme := range []string{"jiffy", "tsc", "process-aware"} {
		fmt.Printf("  %-14s user %8.2fs  system %7.2fs  total %8.2fs\n",
			scheme, out.Victim.User[scheme], out.Victim.Sys[scheme], out.Victim.Total(scheme))
	}
	st := out.VictimStats
	fmt.Printf("  counters: ticks=%d ctxsw=%d preempt=%d traps=%d minor=%d major=%d irqcycles=%d\n",
		st.TicksAbsorbed, st.ContextSwitches, st.Preemptions, st.TraceStops, st.MinorFaults, st.MajorFaults, st.IRQCycles)
	if out.Result != nil {
		output := out.Result.Output
		if len(output) > 60 {
			output = output[:60] + "…"
		}
		fmt.Printf("  program output: %s (done=%v)\n", output, out.Result.Done)
	}
	return nil
}
