// Command meterlab regenerates the paper's evaluation artifacts on
// the simulated machine.
//
// Usage:
//
//	meterlab list
//	meterlab run <artifact> [flags]     one of figure4..figure11, comparison, mitigation,
//	                                    cluster, multiflood, swapflood, routerflood
//	meterlab all [flags]                every artifact in order
//	meterlab meter <O|P|W|B> [flags]    meter one job and print all schemes
//	meterlab cluster [flags]            run one cross-machine flood scenario:
//	                                    an attacker machine floods victim
//	                                    machines over modeled links
//
// Flags:
//
//	-scale f      victim/attack scale, 1.0 = paper scale (default 1.0)
//	-seed n       simulation seed (default 2010)
//	-hz n         timer ticks per second (default 250)
//	-sched s      scheduler policy: o1 or cfs (default o1)
//	-parallel n   campaign worker-pool size (0 = all cores, 1 = sequential);
//	              'all' applies it at both fan-out levels — across artifacts
//	              and across each artifact's machines — so up to n*n machines
//	              may be live at once
//	-attack k     (meter only) arm one attack: shell ctor subst sched thrash irqflood excflood
//	-pps n        (cluster only) flood rate per victim link (default 40000; 0 = silent attacker)
//	-latency-us n (cluster only) one-way link latency, must be > 0 (default 500)
//	-victims s    (cluster only) victim workloads, e.g. "O,O" (default "O,O";
//	              the first victim bills jiffy, the second process-aware)
//	-link-pps n   (cluster only) per-link wire capacity (0 = 148800, a 100 Mb/s wire)
//	-queue-depth n (cluster only) per-link tail-drop queue bound in packets (0 = 64)
//	-lossless     (cluster only) idealised infinite-rate lossless wires (overrides
//	              -link-pps/-queue-depth; replays the pre-lossy link model)
//	-red-min n    (cluster only) RED/ECN early-feedback start, in queue slots
//	              (0 = RED disabled, pure tail-drop)
//	-red-max n    (cluster only) RED all-feedback threshold (default 3x -red-min,
//	              capped at the queue depth)
//	-red-maxp n   (cluster only) RED max mark/drop probability in percent (default 50)
//	-red-weight n (cluster only) RED EWMA weight exponent: the queue estimate moves
//	              by (depth-avg)/2^n per offered frame (0 = instantaneous depth)
//	-qdisc s      (cluster only) per-link queueing discipline: fifo (default) or drr
//	-quantum-bytes n (cluster only) DRR per-flow byte quantum (0 = 1514; requires -qdisc drr)
//
// Output is byte-identical at every -parallel setting; only the host
// wall-clock changes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/attacks"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "meterlab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: meterlab list | run <artifact> | all | meter <O|P|W|B> | cluster")
	}
	cmd, rest := args[0], args[1:]

	fs := flag.NewFlagSet("meterlab", flag.ContinueOnError)
	scale := fs.Float64("scale", 1.0, "victim/attack scale (1.0 = paper scale)")
	seed := fs.Int64("seed", 2010, "simulation seed")
	hz := fs.Uint64("hz", 250, "timer ticks per second")
	sched := fs.String("sched", "o1", "scheduler policy: o1 or cfs")
	parallel := fs.Int("parallel", 0, "campaign worker-pool size; 'all' fans out across artifacts and machines, up to n*n live machines (0 = all cores, 1 = sequential)")
	attackKey := fs.String("attack", "", "attack to arm for 'meter'")
	pps := fs.Int64("pps", 40_000, "flood rate per victim link for 'cluster' (0 = silent attacker)")
	latencyUs := fs.Int64("latency-us", 500, "one-way link latency for 'cluster', microseconds (> 0)")
	victims := fs.String("victims", "O,O", "victim workloads for 'cluster' (comma-separated)")
	linkPPS := fs.Int64("link-pps", 0, "per-link wire capacity for 'cluster' (0 = 148800)")
	queueDepth := fs.Int64("queue-depth", 0, "per-link tail-drop queue bound for 'cluster', packets (0 = 64)")
	lossless := fs.Bool("lossless", false, "idealised infinite-rate lossless wires for 'cluster'")
	redMin := fs.Int64("red-min", 0, "RED early-feedback start for 'cluster', queue slots (0 = RED disabled)")
	redMax := fs.Int64("red-max", 0, "RED all-feedback threshold for 'cluster' (0 = 3x -red-min, capped at queue depth)")
	redMaxP := fs.Int64("red-maxp", 50, "RED max mark/drop probability for 'cluster', percent")
	redWeight := fs.Int64("red-weight", 0, "RED EWMA weight exponent for 'cluster' (0 = instantaneous depth)")
	qdisc := fs.String("qdisc", "", "per-link queueing discipline for 'cluster': fifo (default) or drr")
	quantumBytes := fs.Int64("quantum-bytes", 0, "DRR per-flow byte quantum for 'cluster' (0 = 1514; requires -qdisc drr)")

	switch cmd {
	case "list":
		for _, id := range cpumeter.Experiments() {
			fmt.Println(id)
		}
		return nil

	case "run", "all", "meter", "cluster":
		target := ""
		if cmd == "run" || cmd == "meter" {
			if len(rest) == 0 {
				return fmt.Errorf("%s: missing argument", cmd)
			}
			target, rest = rest[0], rest[1:]
		}
		if err := fs.Parse(rest); err != nil {
			return err
		}
		opts := cpumeter.Options{
			Seed:            *seed,
			HZ:              *hz,
			SchedulerPolicy: *sched,
			Scale:           *scale,
			Parallelism:     *parallel,
		}
		switch cmd {
		case "run":
			return runArtifact(target, opts)
		case "all":
			return runAllArtifacts(opts)
		case "cluster":
			return runCluster(clusterFlags{
				victims:      *victims,
				pps:          *pps,
				latencyUs:    *latencyUs,
				linkPPS:      *linkPPS,
				queueDepth:   *queueDepth,
				lossless:     *lossless,
				redMin:       *redMin,
				redMax:       *redMax,
				redMaxP:      *redMaxP,
				redWeight:    *redWeight,
				qdisc:        *qdisc,
				quantumBytes: *quantumBytes,
			}, opts)
		default:
			return meterJob(target, *attackKey, opts)
		}

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// clusterFlags carries the cluster mode's raw flag values; they are
// validated before any machine is built so bad input yields a usage
// error instead of a panic or a silently degenerate run.
type clusterFlags struct {
	victims      string
	pps          int64
	latencyUs    int64
	linkPPS      int64
	queueDepth   int64
	lossless     bool
	redMin       int64
	redMax       int64
	redMaxP      int64
	redWeight    int64
	qdisc        string
	quantumBytes int64
}

// redSpec resolves the RED flags: nil (disabled) when -red-min is 0,
// otherwise a validated spec with the -red-max default derived from
// -red-min and the resolved queue depth.
func (f clusterFlags) redSpec() (*cpumeter.REDSpec, error) {
	if f.redMin == 0 {
		if f.redMax != 0 || f.redMaxP != 50 || f.redWeight != 0 {
			return nil, fmt.Errorf("cluster: -red-max/-red-maxp/-red-weight have no effect without -red-min (RED is disabled at -red-min 0)")
		}
		return nil, nil
	}
	if f.redMin < 0 || f.redMax < 0 || f.redMaxP < 1 || f.redMaxP > 100 {
		return nil, fmt.Errorf("cluster: -red-min %d and -red-max %d must be >= 0 and -red-maxp %d in 1..100", f.redMin, f.redMax, f.redMaxP)
	}
	if f.redWeight < 0 || f.redWeight > 16 {
		return nil, fmt.Errorf("cluster: -red-weight %d must be in 0..16 (the EWMA moves by depth/2^weight per frame)", f.redWeight)
	}
	if f.lossless {
		return nil, fmt.Errorf("cluster: -red-min is meaningless with -lossless (an infinite-rate wire has no queue)")
	}
	depth := uint64(f.queueDepth)
	if depth == 0 {
		depth = cpumeter.DefaultLinkQueueDepth
	}
	maxDepth := uint64(f.redMax)
	if maxDepth == 0 {
		maxDepth = 3 * uint64(f.redMin)
		if maxDepth > depth {
			maxDepth = depth
		}
	}
	return &cpumeter.REDSpec{MinDepth: uint64(f.redMin), MaxDepth: maxDepth, MaxPct: uint64(f.redMaxP), Weight: uint64(f.redWeight)}, nil
}

// qdiscSpec validates the queueing-discipline flags.
func (f clusterFlags) qdiscSpec() (qdisc string, quantum uint64, err error) {
	switch f.qdisc {
	case "", cpumeter.QdiscFIFO:
	case cpumeter.QdiscDRR:
		if f.lossless {
			return "", 0, fmt.Errorf("cluster: -qdisc drr is meaningless with -lossless (an infinite-rate wire has no queue to schedule)")
		}
	default:
		return "", 0, fmt.Errorf("cluster: unknown -qdisc %q (have %s, %s)", f.qdisc, cpumeter.QdiscFIFO, cpumeter.QdiscDRR)
	}
	if f.quantumBytes < 0 {
		return "", 0, fmt.Errorf("cluster: -quantum-bytes %d is negative", f.quantumBytes)
	}
	if f.quantumBytes > 0 && f.qdisc != cpumeter.QdiscDRR {
		return "", 0, fmt.Errorf("cluster: -quantum-bytes requires -qdisc drr (FIFO has no per-flow quantum)")
	}
	return f.qdisc, uint64(f.quantumBytes), nil
}

// parseVictims validates and expands the -victims flag: the first
// victim bills jiffy, the second process-aware, alternating.
func parseVictims(victims string) ([]cpumeter.ClusterVictim, error) {
	known := cpumeter.WorkloadKeys()
	billing := []string{"jiffy", "process-aware"}
	var vs []cpumeter.ClusterVictim
	for _, w := range strings.Split(victims, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		ok := false
		for _, k := range known {
			if w == k {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("cluster: unknown victim workload %q (have %s)", w, strings.Join(known, ", "))
		}
		vs = append(vs, cpumeter.ClusterVictim{Workload: w, Billing: billing[len(vs)%len(billing)]})
	}
	if len(vs) == 0 {
		return nil, fmt.Errorf("cluster: no victims in %q (want comma-separated workloads from %s)", victims, strings.Join(known, ", "))
	}
	return vs, nil
}

// runCluster executes one custom cross-machine flood scenario and
// prints every victim host's bill under its own billing scheme.
func runCluster(f clusterFlags, opts cpumeter.Options) error {
	vs, err := parseVictims(f.victims)
	if err != nil {
		return err
	}
	if f.pps < 0 {
		return fmt.Errorf("cluster: -pps %d is negative (0 means a silent attacker)", f.pps)
	}
	if f.latencyUs <= 0 {
		return fmt.Errorf("cluster: -latency-us %d must be > 0 (signals need flight time for deterministic lockstep)", f.latencyUs)
	}
	if f.linkPPS < 0 || f.queueDepth < 0 {
		return fmt.Errorf("cluster: -link-pps %d and -queue-depth %d must be >= 0", f.linkPPS, f.queueDepth)
	}
	linkPPS := uint64(f.linkPPS)
	if f.lossless {
		linkPPS = cpumeter.UnlimitedLinkPPS
	}
	red, err := f.redSpec()
	if err != nil {
		return err
	}
	qdisc, quantum, err := f.qdiscSpec()
	if err != nil {
		return err
	}
	start := time.Now()
	out, err := cpumeter.MeterCluster(cpumeter.ClusterRunSpec{
		Opts:             opts,
		Victims:          vs,
		FloodPPS:         uint64(f.pps),
		LinkLatencyUs:    uint64(f.latencyUs),
		LinkPPS:          linkPPS,
		LinkQueueDepth:   uint64(f.queueDepth),
		LinkRED:          red,
		LinkQdisc:        qdisc,
		LinkQuantumBytes: quantum,
	})
	if err != nil {
		return err
	}
	fmt.Printf("cluster: 1 attacker + %d victim machines, %d pps per link, %d us link latency (elapsed %.1f virtual s)\n",
		len(vs), f.pps, f.latencyUs, out.ElapsedSec)
	for i, v := range out.Victims {
		fmt.Printf("  victim %d (%s, bills %s): sent %d frames, received %d, dropped %d\n",
			i+1, v.Run.Spec.Workload, v.Billing, out.PacketsSent[i], v.PacketsReceived, out.PacketsDropped[i])
		for _, scheme := range []string{"jiffy", "tsc", "process-aware"} {
			marker := " "
			if scheme == v.Billing {
				marker = "*"
			}
			fmt.Printf("   %s%-14s user %8.2fs  system %7.2fs  total %8.2fs\n",
				marker, scheme, v.Run.Victim.User[scheme], v.Run.Victim.Sys[scheme], v.Run.Victim.Total(scheme))
		}
		fmt.Printf("    system account (process-aware IRQ bucket): %.2f s\n", v.Run.SystemAccountSec)
	}
	fmt.Printf("  (regenerated in %.1fs host time)\n", time.Since(start).Seconds())
	return nil
}

func runArtifact(id string, opts cpumeter.Options) error {
	start := time.Now()
	fig, err := cpumeter.Reproduce(id, opts)
	if err != nil {
		return fmt.Errorf("reproduce %s: %w", id, err)
	}
	fmt.Print(fig.Render())
	fmt.Printf("  (regenerated in %.1fs host time)\n\n", time.Since(start).Seconds())
	return nil
}

// runAllArtifacts regenerates every artifact through the parallel
// campaign engine and prints each with its own regeneration time, so
// speedups are visible without the bench harness.
func runAllArtifacts(opts cpumeter.Options) error {
	start := time.Now()
	runs, err := cpumeter.ReproduceAllTimed(nil, opts)
	if err != nil {
		return err
	}
	for _, r := range runs {
		fmt.Print(r.Figure.Render())
		fmt.Printf("  (regenerated in %.1fs host time)\n\n", r.Elapsed.Seconds())
	}
	var artifactSec float64
	for _, r := range runs {
		artifactSec += r.Elapsed.Seconds()
	}
	fmt.Printf("%d artifacts in %.1fs wall time (%.1fs summed artifact time)\n",
		len(runs), time.Since(start).Seconds(), artifactSec)
	return nil
}

func meterJob(workload, attackKey string, opts cpumeter.Options) error {
	var attack cpumeter.Attack
	if attackKey != "" {
		freq := opts.Freq
		if freq == 0 {
			freq = cpumeter.DefaultCPUHz
		}
		for _, a := range attacks.All(freq) {
			if a.Key() == attackKey {
				attack = a
			}
		}
		if attack == nil {
			return fmt.Errorf("unknown attack %q", attackKey)
		}
	}
	out, err := cpumeter.Meter(cpumeter.JobSpec{Workload: workload, Attack: attack, Options: opts})
	if err != nil {
		return err
	}
	fmt.Printf("job %s", workload)
	if attack != nil {
		fmt.Printf(" under %s", attack.Name())
	}
	fmt.Printf(" (elapsed %.1f virtual s)\n", out.ElapsedSec)
	for _, scheme := range []string{"jiffy", "tsc", "process-aware"} {
		fmt.Printf("  %-14s user %8.2fs  system %7.2fs  total %8.2fs\n",
			scheme, out.Victim.User[scheme], out.Victim.Sys[scheme], out.Victim.Total(scheme))
	}
	st := out.VictimStats
	fmt.Printf("  counters: ticks=%d ctxsw=%d preempt=%d traps=%d minor=%d major=%d irqcycles=%d\n",
		st.TicksAbsorbed, st.ContextSwitches, st.Preemptions, st.TraceStops, st.MinorFaults, st.MajorFaults, st.IRQCycles)
	if out.Result != nil {
		output := out.Result.Output
		if len(output) > 60 {
			output = output[:60] + "…"
		}
		fmt.Printf("  program output: %s (done=%v)\n", output, out.Result.Done)
	}
	return nil
}
