// Command meterlab regenerates the paper's evaluation artifacts on
// the simulated machine.
//
// Usage:
//
//	meterlab list
//	meterlab run <artifact> [flags]     one of figure4..figure11, comparison, mitigation,
//	                                    cluster, multiflood, swapflood, routerflood,
//	                                    fairflood, chaosflood
//	meterlab all [flags]                every artifact in order
//	meterlab meter <O|P|W|B> [flags]    meter one job and print all schemes
//	meterlab cluster [flags]            run one cross-machine flood scenario:
//	                                    an attacker machine floods victim
//	                                    machines over modeled links
//	meterlab chaos [flags]              run one routed flood under a chaos overlay:
//	                                    seeded syscall faults, a scheduled router
//	                                    crash/reboot, and egress link flap, with
//	                                    every link's conservation ledger printed
//	meterlab snapshot -out f [flags]    warm the checkpointable fork-lab machine
//	                                    to a virtual-time barrier, checkpoint it,
//	                                    and write a replay manifest to f
//	meterlab resume -from f [flags]     replay a manifest's warmup, checkpoint,
//	                                    restore into an independent fork, and run
//	                                    the fork to completion
//
// Flags:
//
//	-scale f      victim/attack scale, 1.0 = paper scale (default 1.0)
//	-seed n       simulation seed (default 2010)
//	-hz n         timer ticks per second (default 250)
//	-sched s      scheduler policy: o1 or cfs (default o1)
//	-parallel n   campaign worker-pool size (0 = all cores, 1 = sequential);
//	              'all' applies it at both fan-out levels — across artifacts
//	              and across each artifact's machines — so up to n*n machines
//	              may be live at once
//	-attack k     (meter only) arm one attack: shell ctor subst sched thrash irqflood excflood
//	-pps n        (cluster/chaos) flood rate per victim link — per attacker in
//	              chaos mode (default 40000; 0 = silent attackers)
//	-latency-us n (cluster/chaos) one-way link latency, must be > 0 (default 500)
//	-victims s    (cluster only) victim workloads, e.g. "O,O" (default "O,O";
//	              the first victim bills jiffy, the second process-aware)
//	-link-pps n   (cluster only) per-link wire capacity (0 = 148800, a 100 Mb/s wire)
//	-queue-depth n (cluster only) per-link tail-drop queue bound in packets (0 = 64)
//	-lossless     (cluster only) idealised infinite-rate lossless wires (overrides
//	              -link-pps/-queue-depth; replays the pre-lossy link model)
//	-red-min n    (cluster only) RED/ECN early-feedback start, in queue slots
//	              (0 = RED disabled, pure tail-drop)
//	-red-max n    (cluster only) RED all-feedback threshold (default 3x -red-min,
//	              capped at the queue depth)
//	-red-maxp n   (cluster only) RED max mark/drop probability in percent (default 50)
//	-red-weight n (cluster only) RED EWMA weight exponent: the queue estimate moves
//	              by (depth-avg)/2^n per offered frame (0 = instantaneous depth)
//	-qdisc s      (cluster only) per-link queueing discipline: fifo (default) or drr
//	-quantum-bytes n (cluster only) DRR per-flow byte quantum (0 = 1514; requires -qdisc drr)
//	-fault-ppm n  (chaos only) per-syscall fault probability in parts per million
//	              (0 = no injection, 1000000 = every call fails)
//	-fault-syscalls s (chaos only) comma-separated syscalls taking injection
//	              (default "sendto,read"; requires -fault-ppm)
//	-fault-errno s (chaos only) injected errno: eagain (default, transient),
//	              enomem, or eio (hard; requires -fault-ppm)
//	-crash-at f   (chaos only) kill the router this many virtual seconds in
//	              (0 = never; must land inside the scenario horizon)
//	-restart-after f (chaos only) reboot the router this many virtual seconds
//	              after the crash (0 = stays down; requires -crash-at)
//	-flap s       (chaos only) flap the router→victim egress wire: "first:down:up"
//	              in virtual seconds (e.g. 0.5:0.1:0.4; up 0 = one outage)
//	-out f        (snapshot only) replay-manifest output path (required)
//	-from f       (resume only) replay-manifest input path (required)
//	-warmup f     (snapshot/resume snapshot side) checkpoint barrier in virtual
//	              seconds (0 = the fork lab's default mid-run barrier)
//	-rounds n     (snapshot only) fork-lab churn rounds, scales run length
//	              (0 = default 60)
//	-cpuprofile f write a pprof CPU profile of the command to file f
//	-memprofile f write a pprof heap profile (post-run, after a GC) to file f
//
// Output is byte-identical at every -parallel setting; only the host
// wall-clock changes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/attacks"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "meterlab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: meterlab list | run <artifact> | all | meter <O|P|W|B> | cluster | chaos")
	}
	cmd, rest := args[0], args[1:]

	fs := flag.NewFlagSet("meterlab", flag.ContinueOnError)
	scale := fs.Float64("scale", 1.0, "victim/attack scale (1.0 = paper scale)")
	seed := fs.Int64("seed", 2010, "simulation seed")
	hz := fs.Uint64("hz", 250, "timer ticks per second")
	sched := fs.String("sched", "o1", "scheduler policy: o1 or cfs")
	parallel := fs.Int("parallel", 0, "campaign worker-pool size; 'all' fans out across artifacts and machines, up to n*n live machines (0 = all cores, 1 = sequential)")
	attackKey := fs.String("attack", "", "attack to arm for 'meter'")
	pps := fs.Int64("pps", 40_000, "flood rate per victim link for 'cluster' (0 = silent attacker)")
	latencyUs := fs.Int64("latency-us", 500, "one-way link latency for 'cluster', microseconds (> 0)")
	victims := fs.String("victims", "O,O", "victim workloads for 'cluster' (comma-separated)")
	linkPPS := fs.Int64("link-pps", 0, "per-link wire capacity for 'cluster' (0 = 148800)")
	queueDepth := fs.Int64("queue-depth", 0, "per-link tail-drop queue bound for 'cluster', packets (0 = 64)")
	lossless := fs.Bool("lossless", false, "idealised infinite-rate lossless wires for 'cluster'")
	redMin := fs.Int64("red-min", 0, "RED early-feedback start for 'cluster', queue slots (0 = RED disabled)")
	redMax := fs.Int64("red-max", 0, "RED all-feedback threshold for 'cluster' (0 = 3x -red-min, capped at queue depth)")
	redMaxP := fs.Int64("red-maxp", 50, "RED max mark/drop probability for 'cluster', percent")
	redWeight := fs.Int64("red-weight", 0, "RED EWMA weight exponent for 'cluster' (0 = instantaneous depth)")
	qdisc := fs.String("qdisc", "", "per-link queueing discipline for 'cluster': fifo (default) or drr")
	quantumBytes := fs.Int64("quantum-bytes", 0, "DRR per-flow byte quantum for 'cluster' (0 = 1514; requires -qdisc drr)")
	faultPPM := fs.Int64("fault-ppm", 0, "per-syscall fault probability for 'chaos', parts per million (0 = no injection)")
	faultSyscalls := fs.String("fault-syscalls", "", "comma-separated syscalls taking injection for 'chaos' (default sendto,read; requires -fault-ppm)")
	faultErrno := fs.String("fault-errno", "", "injected errno for 'chaos': eagain (default), enomem, eio (requires -fault-ppm)")
	crashAt := fs.Float64("crash-at", 0, "kill the router this many virtual seconds in for 'chaos' (0 = never)")
	restartAfter := fs.Float64("restart-after", 0, "reboot the router this many virtual seconds after the crash for 'chaos' (0 = stays down; requires -crash-at)")
	flapStr := fs.String("flap", "", "egress outage windows for 'chaos': first:down:up in virtual seconds (up 0 = one outage)")
	outPath := fs.String("out", "", "replay-manifest output path for 'snapshot' (required)")
	fromPath := fs.String("from", "", "replay-manifest input path for 'resume' (required)")
	warmup := fs.Float64("warmup", 0, "checkpoint barrier for 'snapshot' in virtual seconds (0 = default mid-run barrier)")
	rounds := fs.Int64("rounds", 0, "fork-lab churn rounds for 'snapshot' (0 = default 60)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the command to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile (post-run, after a GC) to this file")

	switch cmd {
	case "list":
		for _, id := range cpumeter.Experiments() {
			fmt.Println(id)
		}
		return nil

	case "run", "all", "meter", "cluster", "chaos", "snapshot", "resume":
		target := ""
		if cmd == "run" || cmd == "meter" {
			if len(rest) == 0 {
				return fmt.Errorf("%s: missing argument", cmd)
			}
			target, rest = rest[0], rest[1:]
		}
		if err := fs.Parse(rest); err != nil {
			return err
		}
		opts := cpumeter.Options{
			Seed:            *seed,
			HZ:              *hz,
			SchedulerPolicy: *sched,
			Scale:           *scale,
			Parallelism:     *parallel,
		}
		prof, err := startProfiles(*cpuProfile, *memProfile)
		if err != nil {
			return err
		}
		runErr := func() error {
			switch cmd {
			case "run":
				return runArtifact(target, opts)
			case "all":
				return runAllArtifacts(opts)
			case "cluster":
				return runCluster(clusterFlags{
					victims:      *victims,
					pps:          *pps,
					latencyUs:    *latencyUs,
					linkPPS:      *linkPPS,
					queueDepth:   *queueDepth,
					lossless:     *lossless,
					redMin:       *redMin,
					redMax:       *redMax,
					redMaxP:      *redMaxP,
					redWeight:    *redWeight,
					qdisc:        *qdisc,
					quantumBytes: *quantumBytes,
				}, opts)
			case "chaos":
				return runChaos(chaosFlags{
					pps:          *pps,
					latencyUs:    *latencyUs,
					faultPPM:     *faultPPM,
					faultCalls:   *faultSyscalls,
					faultErrno:   *faultErrno,
					crashAt:      *crashAt,
					restartAfter: *restartAfter,
					flap:         *flapStr,
				}, opts)
			case "snapshot":
				return runSnapshot(snapshotFlags{
					out:    *outPath,
					warmup: *warmup,
					rounds: *rounds,
					pps:    *pps,
				}, opts)
			case "resume":
				return runResume(resumeFlags{
					from: *fromPath,
					pps:  *pps,
				})
			default:
				return meterJob(target, *attackKey, opts)
			}
		}()
		if err := prof.stop(); err != nil && runErr == nil {
			runErr = err
		}
		return runErr

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// profiler manages the optional pprof outputs wrapped around one
// command: a CPU profile recording the whole run and a heap profile
// written after it (post-GC, so it shows what the run left live, not
// transient garbage).
type profiler struct {
	cpuFile *os.File
	memPath string
}

// startProfiles opens the requested profile outputs before the
// command runs, so an unwritable path is a usage error up front
// rather than a surprise after minutes of simulation.
func startProfiles(cpuPath, memPath string) (*profiler, error) {
	p := &profiler{memPath: memPath}
	if memPath != "" {
		f, err := os.Create(memPath)
		if err != nil {
			return nil, fmt.Errorf("-memprofile: %w", err)
		}
		f.Close()
	}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		p.cpuFile = f
	}
	return p, nil
}

// stop finalises both profiles. It runs even when the command failed,
// so a partial run still yields a usable CPU profile.
func (p *profiler) stop() error {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		p.cpuFile = nil
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("-memprofile: %w", err)
		}
		return f.Close()
	}
	return nil
}

// clusterFlags carries the cluster mode's raw flag values; they are
// validated before any machine is built so bad input yields a usage
// error instead of a panic or a silently degenerate run.
type clusterFlags struct {
	victims      string
	pps          int64
	latencyUs    int64
	linkPPS      int64
	queueDepth   int64
	lossless     bool
	redMin       int64
	redMax       int64
	redMaxP      int64
	redWeight    int64
	qdisc        string
	quantumBytes int64
}

// redSpec resolves the RED flags: nil (disabled) when -red-min is 0,
// otherwise a validated spec with the -red-max default derived from
// -red-min and the resolved queue depth.
func (f clusterFlags) redSpec() (*cpumeter.REDSpec, error) {
	if f.redMin == 0 {
		if f.redMax != 0 || f.redMaxP != 50 || f.redWeight != 0 {
			return nil, fmt.Errorf("cluster: -red-max/-red-maxp/-red-weight have no effect without -red-min (RED is disabled at -red-min 0)")
		}
		return nil, nil
	}
	if f.redMin < 0 || f.redMax < 0 || f.redMaxP < 1 || f.redMaxP > 100 {
		return nil, fmt.Errorf("cluster: -red-min %d and -red-max %d must be >= 0 and -red-maxp %d in 1..100", f.redMin, f.redMax, f.redMaxP)
	}
	if f.redWeight < 0 || f.redWeight > 16 {
		return nil, fmt.Errorf("cluster: -red-weight %d must be in 0..16 (the EWMA moves by depth/2^weight per frame)", f.redWeight)
	}
	if f.lossless {
		return nil, fmt.Errorf("cluster: -red-min is meaningless with -lossless (an infinite-rate wire has no queue)")
	}
	depth := uint64(f.queueDepth)
	if depth == 0 {
		depth = cpumeter.DefaultLinkQueueDepth
	}
	maxDepth := uint64(f.redMax)
	if maxDepth == 0 {
		maxDepth = 3 * uint64(f.redMin)
		if maxDepth > depth {
			maxDepth = depth
		}
	}
	return &cpumeter.REDSpec{MinDepth: uint64(f.redMin), MaxDepth: maxDepth, MaxPct: uint64(f.redMaxP), Weight: uint64(f.redWeight)}, nil
}

// qdiscSpec validates the queueing-discipline flags.
func (f clusterFlags) qdiscSpec() (qdisc string, quantum uint64, err error) {
	switch f.qdisc {
	case "", cpumeter.QdiscFIFO:
	case cpumeter.QdiscDRR:
		if f.lossless {
			return "", 0, fmt.Errorf("cluster: -qdisc drr is meaningless with -lossless (an infinite-rate wire has no queue to schedule)")
		}
	default:
		return "", 0, fmt.Errorf("cluster: unknown -qdisc %q (have %s, %s)", f.qdisc, cpumeter.QdiscFIFO, cpumeter.QdiscDRR)
	}
	if f.quantumBytes < 0 {
		return "", 0, fmt.Errorf("cluster: -quantum-bytes %d is negative", f.quantumBytes)
	}
	if f.quantumBytes > 0 && f.qdisc != cpumeter.QdiscDRR {
		return "", 0, fmt.Errorf("cluster: -quantum-bytes requires -qdisc drr (FIFO has no per-flow quantum)")
	}
	return f.qdisc, uint64(f.quantumBytes), nil
}

// chaosFlags carries the chaos mode's raw flag values; like
// clusterFlags they are validated before any machine is built so bad
// input yields a usage error, not a panic mid-scenario.
type chaosFlags struct {
	pps          int64
	latencyUs    int64
	faultPPM     int64
	faultCalls   string
	faultErrno   string
	crashAt      float64
	restartAfter float64
	flap         string
}

// parseFlap resolves the -flap flag: "first:down:up" in virtual
// seconds, nil when unset. A zero down window is rejected — an outage
// must have a length — and so is anything non-numeric or negative.
func parseFlap(s string) (*cpumeter.FlapSpec, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("chaos: -flap %q must be first:down:up in virtual seconds (e.g. 0.5:0.1:0.4)", s)
	}
	var vals [3]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("chaos: -flap %q: component %q must be a non-negative number of seconds", s, p)
		}
		vals[i] = v
	}
	if vals[1] <= 0 {
		return nil, fmt.Errorf("chaos: -flap %q has a zero down window (an outage must have a length)", s)
	}
	return &cpumeter.FlapSpec{
		FirstDownUs: uint64(vals[0] * 1e6),
		DownUs:      uint64(vals[1] * 1e6),
		UpUs:        uint64(vals[2] * 1e6),
	}, nil
}

// chaosSpec validates the fault-overlay flags and assembles the
// ChaosSpec.
func (f chaosFlags) chaosSpec() (cpumeter.ChaosSpec, error) {
	var cs cpumeter.ChaosSpec
	if f.faultPPM < 0 || f.faultPPM > cpumeter.FaultPPMScale {
		return cs, fmt.Errorf("chaos: -fault-ppm %d must be in 0..%d (parts per million)", f.faultPPM, cpumeter.FaultPPMScale)
	}
	if f.faultPPM == 0 && (f.faultCalls != "" || f.faultErrno != "") {
		return cs, fmt.Errorf("chaos: -fault-syscalls/-fault-errno have no effect without -fault-ppm (injection is disabled at 0)")
	}
	switch f.faultErrno {
	case "", "eio", "eagain", "enomem":
	default:
		return cs, fmt.Errorf("chaos: unknown -fault-errno %q (have eio, eagain, enomem)", f.faultErrno)
	}
	var calls []string
	if f.faultCalls != "" {
		for _, c := range strings.Split(f.faultCalls, ",") {
			c = strings.TrimSpace(c)
			if c == "" {
				return cs, fmt.Errorf("chaos: -fault-syscalls %q has an empty entry (want e.g. \"sendto,read\")", f.faultCalls)
			}
			if !cpumeter.IsKnownSyscall(c) {
				return cs, fmt.Errorf("chaos: -fault-syscalls entry %q is not a known syscall (known: %s)",
					c, strings.Join(cpumeter.KnownSyscallNames(), ", "))
			}
			calls = append(calls, c)
		}
	}
	if f.crashAt < 0 || f.restartAfter < 0 {
		return cs, fmt.Errorf("chaos: -crash-at %g and -restart-after %g must be >= 0 virtual seconds", f.crashAt, f.restartAfter)
	}
	if f.restartAfter > 0 && f.crashAt == 0 {
		return cs, fmt.Errorf("chaos: -restart-after requires -crash-at (nothing to reboot without a crash)")
	}
	flap, err := parseFlap(f.flap)
	if err != nil {
		return cs, err
	}
	return cpumeter.ChaosSpec{
		FaultPPM:         uint32(f.faultPPM),
		FaultSyscalls:    calls,
		FaultErrno:       f.faultErrno,
		RouterCrashSec:   f.crashAt,
		RouterRestartSec: f.restartAfter,
		VictimFlap:       flap,
	}, nil
}

// runChaos executes the routed flood (two attackers through a
// RED-managed egress, alongside the well-behaved ECN flow) under the
// flag-selected chaos overlay and prints the full billing-integrity
// harvest: cumulative router bill, victim bill, flow outcome, and
// every link direction's conservation ledger. An unbalanced ledger is
// an error — the command exits nonzero so smoke runs catch it.
func runChaos(f chaosFlags, opts cpumeter.Options) error {
	cs, err := f.chaosSpec()
	if err != nil {
		return err
	}
	if f.pps < 0 {
		return fmt.Errorf("chaos: -pps %d is negative (0 means silent attackers)", f.pps)
	}
	if f.latencyUs <= 0 {
		return fmt.Errorf("chaos: -latency-us %d must be > 0 (signals need flight time for deterministic lockstep)", f.latencyUs)
	}
	const flowFrames = 300
	start := time.Now()
	out, err := cpumeter.MeterChaosFlood(cpumeter.ChaosFloodSpec{
		Flood: cpumeter.RouterFloodSpec{
			Opts:           opts,
			Attackers:      2,
			PerAttackerPPS: uint64(f.pps),
			Victim:         cpumeter.ClusterVictim{Workload: "O", Billing: "jiffy"},
			EgressPPS:      30_000,
			RED:            &cpumeter.REDSpec{MinDepth: 8, MaxDepth: 24, MaxPct: 50},
			FlowFrames:     flowFrames,
			LinkLatencyUs:  uint64(f.latencyUs),
		},
		Chaos: cs,
	})
	if err != nil {
		return err
	}
	fmt.Printf("chaos: 2 attackers + sender + router + victim, %d pps per attacker (elapsed %.1f virtual s)\n",
		f.pps, out.ElapsedSec)
	fmt.Printf("  faults injected %d; router incarnations %d (crashed %v), forwarded %d frames\n",
		out.FaultsInjected, out.RouterIncarnations, out.RouterCrashed, out.RouterForwarded)
	fmt.Printf("  flow: acked %d/%d, gave up %v, send errs %d, recv errs %d\n",
		out.Flow.Acked, flowFrames, out.Flow.GaveUp, out.Flow.SendErrors, out.Flow.RecvErrors)
	fmt.Println("  router daemon bill (summed across incarnations):")
	for _, scheme := range []string{"jiffy", "tsc", "process-aware"} {
		fmt.Printf("    %-14s user %8.2fs  system %7.2fs  total %8.2fs\n",
			scheme, out.Router.User[scheme], out.Router.Sys[scheme], out.Router.Total(scheme))
	}
	v := out.Victim
	fmt.Printf("  victim (%s, bills %s): received %d frames\n",
		v.Run.Spec.Workload, v.Billing, v.PacketsReceived)
	for _, scheme := range []string{"jiffy", "tsc", "process-aware"} {
		marker := " "
		if scheme == v.Billing {
			marker = "*"
		}
		fmt.Printf("   %s%-14s user %8.2fs  system %7.2fs  total %8.2fs\n",
			marker, scheme, v.Run.Victim.User[scheme], v.Run.Victim.Sys[scheme], v.Run.Victim.Total(scheme))
	}
	fmt.Println("  link ledgers (Sent = Delivered + Dropped + Queued):")
	for _, la := range out.Links {
		state := "balanced"
		if !la.Balanced() {
			state = "VIOLATION"
		}
		fmt.Printf("    %-22s sent %7d  delivered %7d  dropped %6d  queued %4d  %s\n",
			la.Name, la.Sent, la.Delivered, la.Dropped, la.Queued, state)
	}
	if bad := out.Unbalanced(); len(bad) > 0 {
		return fmt.Errorf("chaos: conservation ledger violated on %v", bad)
	}
	fmt.Printf("  (regenerated in %.1fs host time)\n", time.Since(start).Seconds())
	return nil
}

// parseVictims validates and expands the -victims flag: the first
// victim bills jiffy, the second process-aware, alternating.
func parseVictims(victims string) ([]cpumeter.ClusterVictim, error) {
	known := cpumeter.WorkloadKeys()
	billing := []string{"jiffy", "process-aware"}
	var vs []cpumeter.ClusterVictim
	for _, w := range strings.Split(victims, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		ok := false
		for _, k := range known {
			if w == k {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("cluster: unknown victim workload %q (have %s)", w, strings.Join(known, ", "))
		}
		vs = append(vs, cpumeter.ClusterVictim{Workload: w, Billing: billing[len(vs)%len(billing)]})
	}
	if len(vs) == 0 {
		return nil, fmt.Errorf("cluster: no victims in %q (want comma-separated workloads from %s)", victims, strings.Join(known, ", "))
	}
	return vs, nil
}

type snapshotFlags struct {
	out    string
	warmup float64
	rounds int64
	pps    int64
}

type resumeFlags struct {
	from string
	pps  int64
}

// checkpointManifest is the replay file the snapshot verb writes and
// the resume verb replays: the fork-lab spec plus the barrier. A
// machine history is a pure function of (spec, barrier sequence), so
// replaying the warmup reconstructs the exact checkpointed state —
// the manifest is the image, spelled as its recipe.
type checkpointManifest struct {
	Kind         string `json:"kind"`
	Seed         int64  `json:"seed"`
	Rounds       int    `json:"rounds"`
	FloodPPS     uint64 `json:"flood_pps"`
	WarmupCycles uint64 `json:"warmup_cycles"`
}

const manifestKind = "forklab-checkpoint"

// warmupBarrier resolves the -warmup flag (virtual seconds at the
// fork lab's clock) to a cycle barrier; zero selects the default.
func warmupBarrier(warmupSec float64) (cpumeter.Cycles, error) {
	if warmupSec < 0 {
		return 0, fmt.Errorf("-warmup %g must be >= 0 virtual seconds", warmupSec)
	}
	if warmupSec == 0 {
		return cpumeter.DefaultForkLabWarmup, nil
	}
	return cpumeter.Cycles(warmupSec * float64(cpumeter.DefaultCPUHz)), nil
}

// warmForkLab builds the fork-lab machine and runs it to the barrier.
func warmForkLab(spec cpumeter.ForkLabSpec, barrier cpumeter.Cycles) (*cpumeter.Machine, error) {
	m, err := cpumeter.BuildForkLab(spec)
	if err != nil {
		return nil, err
	}
	done, err := m.RunUntil(barrier)
	if err != nil {
		m.Shutdown()
		return nil, fmt.Errorf("warmup: %w", err)
	}
	if done {
		m.Shutdown()
		return nil, fmt.Errorf("warmup finished before the %d-cycle barrier; lower -warmup or raise -rounds", barrier)
	}
	return m, nil
}

// runSnapshot warms the fork-lab machine to the barrier, proves it
// checkpoints, and writes the replay manifest.
func runSnapshot(f snapshotFlags, opts cpumeter.Options) error {
	if f.out == "" {
		return fmt.Errorf("snapshot: -out is required (where to write the replay manifest)")
	}
	if f.rounds < 0 {
		return fmt.Errorf("snapshot: -rounds %d must be >= 0 (0 = default)", f.rounds)
	}
	if f.pps < 0 {
		return fmt.Errorf("snapshot: -pps %d must be >= 0 (0 = default flood)", f.pps)
	}
	barrier, err := warmupBarrier(f.warmup)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	spec := cpumeter.ForkLabSpec{Seed: opts.Seed, Rounds: int(f.rounds), FloodPPS: uint64(f.pps)}
	m, err := warmForkLab(spec, barrier)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	img, err := cpumeter.SnapshotMachine(m)
	m.Shutdown()
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	manifest := checkpointManifest{
		Kind:         manifestKind,
		Seed:         opts.Seed,
		Rounds:       int(f.rounds),
		FloodPPS:     uint64(f.pps),
		WarmupCycles: uint64(barrier),
	}
	data, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		return fmt.Errorf("snapshot: encode manifest: %w", err)
	}
	if err := os.WriteFile(f.out, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	fmt.Printf("snapshot: checkpointed fork lab at cycle %d (%d tasks, %d pending events)\n",
		img.At(), img.Tasks(), img.PendingEvents())
	fmt.Printf("  replay manifest written to %s\n", f.out)
	return nil
}

// runResume replays a manifest's warmup, snapshots at the barrier,
// restores the image into an independent fork, and runs the fork to
// completion — the full checkpoint round trip, in process.
func runResume(f resumeFlags) error {
	if f.from == "" {
		return fmt.Errorf("resume: -from is required (a manifest written by 'meterlab snapshot')")
	}
	if f.pps < 0 {
		return fmt.Errorf("resume: -pps %d must be >= 0 (0 = keep the checkpointed flood)", f.pps)
	}
	data, err := os.ReadFile(f.from)
	if err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	var manifest checkpointManifest
	if err := json.Unmarshal(data, &manifest); err != nil {
		return fmt.Errorf("resume: parse %s: %w", f.from, err)
	}
	if manifest.Kind != manifestKind {
		return fmt.Errorf("resume: %s is not a fork-lab checkpoint manifest (kind %q, want %q)",
			f.from, manifest.Kind, manifestKind)
	}
	if manifest.WarmupCycles == 0 {
		return fmt.Errorf("resume: manifest %s has a zero warmup barrier", f.from)
	}
	spec := cpumeter.ForkLabSpec{Seed: manifest.Seed, Rounds: manifest.Rounds, FloodPPS: manifest.FloodPPS}
	m, err := warmForkLab(spec, cpumeter.Cycles(manifest.WarmupCycles))
	if err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	img, err := cpumeter.SnapshotMachine(m)
	m.Shutdown()
	if err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	fork, err := cpumeter.RestoreMachine(img)
	if err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	defer fork.Shutdown()
	if f.pps > 0 {
		fork.NIC().StartFlood(uint64(f.pps))
	}
	if err := fork.Run(); err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	out := cpumeter.HarvestForkLab(fork)
	fmt.Printf("resume: replayed to cycle %d, restored an independent fork, ran it to completion\n", img.At())
	fmt.Printf("  fork finished at cycle %d: %d faults injected, %d frames received\n",
		out.Clock, out.Faults, out.RxSeen)
	fmt.Print(out.Digest)
	return nil
}

// runCluster executes one custom cross-machine flood scenario and
// prints every victim host's bill under its own billing scheme.
func runCluster(f clusterFlags, opts cpumeter.Options) error {
	vs, err := parseVictims(f.victims)
	if err != nil {
		return err
	}
	if f.pps < 0 {
		return fmt.Errorf("cluster: -pps %d is negative (0 means a silent attacker)", f.pps)
	}
	if f.latencyUs <= 0 {
		return fmt.Errorf("cluster: -latency-us %d must be > 0 (signals need flight time for deterministic lockstep)", f.latencyUs)
	}
	if f.linkPPS < 0 || f.queueDepth < 0 {
		return fmt.Errorf("cluster: -link-pps %d and -queue-depth %d must be >= 0", f.linkPPS, f.queueDepth)
	}
	linkPPS := uint64(f.linkPPS)
	if f.lossless {
		linkPPS = cpumeter.UnlimitedLinkPPS
	}
	red, err := f.redSpec()
	if err != nil {
		return err
	}
	qdisc, quantum, err := f.qdiscSpec()
	if err != nil {
		return err
	}
	start := time.Now()
	out, err := cpumeter.MeterCluster(cpumeter.ClusterRunSpec{
		Opts:             opts,
		Victims:          vs,
		FloodPPS:         uint64(f.pps),
		LinkLatencyUs:    uint64(f.latencyUs),
		LinkPPS:          linkPPS,
		LinkQueueDepth:   uint64(f.queueDepth),
		LinkRED:          red,
		LinkQdisc:        qdisc,
		LinkQuantumBytes: quantum,
	})
	if err != nil {
		return err
	}
	fmt.Printf("cluster: 1 attacker + %d victim machines, %d pps per link, %d us link latency (elapsed %.1f virtual s)\n",
		len(vs), f.pps, f.latencyUs, out.ElapsedSec)
	for i, v := range out.Victims {
		fmt.Printf("  victim %d (%s, bills %s): sent %d frames, received %d, dropped %d\n",
			i+1, v.Run.Spec.Workload, v.Billing, out.PacketsSent[i], v.PacketsReceived, out.PacketsDropped[i])
		for _, scheme := range []string{"jiffy", "tsc", "process-aware"} {
			marker := " "
			if scheme == v.Billing {
				marker = "*"
			}
			fmt.Printf("   %s%-14s user %8.2fs  system %7.2fs  total %8.2fs\n",
				marker, scheme, v.Run.Victim.User[scheme], v.Run.Victim.Sys[scheme], v.Run.Victim.Total(scheme))
		}
		fmt.Printf("    system account (process-aware IRQ bucket): %.2f s\n", v.Run.SystemAccountSec)
	}
	fmt.Printf("  (regenerated in %.1fs host time)\n", time.Since(start).Seconds())
	return nil
}

func runArtifact(id string, opts cpumeter.Options) error {
	start := time.Now()
	fig, err := cpumeter.Reproduce(id, opts)
	if err != nil {
		return fmt.Errorf("reproduce %s: %w", id, err)
	}
	fmt.Print(fig.Render())
	fmt.Printf("  (regenerated in %.1fs host time)\n\n", time.Since(start).Seconds())
	return nil
}

// runAllArtifacts regenerates every artifact through the parallel
// campaign engine and prints each with its own regeneration time, so
// speedups are visible without the bench harness.
func runAllArtifacts(opts cpumeter.Options) error {
	start := time.Now()
	runs, err := cpumeter.ReproduceAllTimed(nil, opts)
	if err != nil {
		return err
	}
	for _, r := range runs {
		fmt.Print(r.Figure.Render())
		fmt.Printf("  (regenerated in %.1fs host time)\n\n", r.Elapsed.Seconds())
	}
	var artifactSec float64
	for _, r := range runs {
		artifactSec += r.Elapsed.Seconds()
	}
	fmt.Printf("%d artifacts in %.1fs wall time (%.1fs summed artifact time)\n",
		len(runs), time.Since(start).Seconds(), artifactSec)
	return nil
}

func meterJob(workload, attackKey string, opts cpumeter.Options) error {
	var attack cpumeter.Attack
	if attackKey != "" {
		freq := opts.Freq
		if freq == 0 {
			freq = cpumeter.DefaultCPUHz
		}
		for _, a := range attacks.All(freq) {
			if a.Key() == attackKey {
				attack = a
			}
		}
		if attack == nil {
			return fmt.Errorf("unknown attack %q", attackKey)
		}
	}
	out, err := cpumeter.Meter(cpumeter.JobSpec{Workload: workload, Attack: attack, Options: opts})
	if err != nil {
		return err
	}
	fmt.Printf("job %s", workload)
	if attack != nil {
		fmt.Printf(" under %s", attack.Name())
	}
	fmt.Printf(" (elapsed %.1f virtual s)\n", out.ElapsedSec)
	for _, scheme := range []string{"jiffy", "tsc", "process-aware"} {
		fmt.Printf("  %-14s user %8.2fs  system %7.2fs  total %8.2fs\n",
			scheme, out.Victim.User[scheme], out.Victim.Sys[scheme], out.Victim.Total(scheme))
	}
	st := out.VictimStats
	fmt.Printf("  counters: ticks=%d ctxsw=%d preempt=%d traps=%d minor=%d major=%d irqcycles=%d\n",
		st.TicksAbsorbed, st.ContextSwitches, st.Preemptions, st.TraceStops, st.MinorFaults, st.MajorFaults, st.IRQCycles)
	if out.Result != nil {
		output := out.Result.Output
		if len(output) > 60 {
			output = output[:60] + "…"
		}
		fmt.Printf("  program output: %s (done=%v)\n", output, out.Result.Done)
	}
	return nil
}
