package main

import (
	"os"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/callsummary"
	"repro/internal/analysis/passes/floatdet"
	"repro/internal/analysis/passes/gotime"
	"repro/internal/analysis/passes/wallclock"
	"repro/internal/analysis/simlint"
)

// passesDir is where analyzer packages live, relative to this
// package's directory (the test working directory).
const passesDir = "../../internal/analysis/passes"

// helperPkgs are packages under passes/ that export no Analyzer.
var helperPkgs = map[string]bool{
	"guestapi": true,
}

// TestSuiteRegistersEveryAnalyzer pins the binary's contents: every
// analyzer package under internal/analysis/passes must be enrolled in
// simlint.All() under its directory name, and the suite must be
// well-formed. A pass that exists on disk but is missing here would
// silently drop out of the binary, the CI gate, and scripts/lint.sh.
func TestSuiteRegistersEveryAnalyzer(t *testing.T) {
	suite := simlint.All()
	if err := analysis.Validate(suite); err != nil {
		t.Fatal(err)
	}
	registered := make(map[string]bool, len(suite))
	for _, a := range suite {
		if a.Doc == "" {
			t.Errorf("analyzer %s has no documentation", a.Name)
		}
		registered[a.Name] = true
	}

	entries, err := os.ReadDir(passesDir)
	if err != nil {
		t.Fatal(err)
	}
	onDisk := 0
	for _, e := range entries {
		if !e.IsDir() || helperPkgs[e.Name()] {
			continue
		}
		onDisk++
		if !registered[e.Name()] {
			t.Errorf("analyzer package %s/%s is not registered in simlint.All()", passesDir, e.Name())
		}
	}
	if len(suite) != onDisk {
		t.Errorf("suite registers %d analyzers, %d analyzer packages on disk", len(suite), onDisk)
	}
}

// TestCallsummaryKeysMatchAnalyzers pins the annotation keys the
// callsummary pass honors while building effect summaries to the Key
// constants of the analyzers that consume those summaries. The
// duplication exists because importing the consumers from callsummary
// would invert the Requires graph; a drift here would make a
// justified annotation suppress the direct finding but leak taint to
// every caller.
func TestCallsummaryKeysMatchAnalyzers(t *testing.T) {
	if callsummary.WallclockKey != wallclock.Key {
		t.Errorf("callsummary.WallclockKey = %q, wallclock.Key = %q", callsummary.WallclockKey, wallclock.Key)
	}
	if callsummary.FloatKey != floatdet.Key {
		t.Errorf("callsummary.FloatKey = %q, floatdet.Key = %q", callsummary.FloatKey, floatdet.Key)
	}
	if callsummary.GotimeKey != gotime.Key {
		t.Errorf("callsummary.GotimeKey = %q, gotime.Key = %q", callsummary.GotimeKey, gotime.Key)
	}
}
