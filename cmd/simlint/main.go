// Simlint is the repo's determinism and billing-integrity linter: a
// vet-protocol multichecker over the analyzers in
// internal/analysis/passes. Build it once, then let `go vet` drive
// it across the module:
//
//	go build -o bin/simlint ./cmd/simlint
//	go vet -vettool=$(pwd)/bin/simlint ./...
//
// or run both steps through scripts/lint.sh. Individual analyzers
// can be selected the usual vet way, e.g.
// `go vet -vettool=... -mapiter ./...`.
package main

import (
	"repro/internal/analysis/simlint"
	"repro/internal/analysis/unit"
)

func main() {
	unit.Main(simlint.All()...)
}
