// Package cpumeter is the public API of the reproduction of Liu &
// Ding, "On Trustworthiness of CPU Usage Metering and Accounting"
// (ICDCSW 2010). It exposes:
//
//   - a deterministic simulated machine (CPU, memory, devices,
//     O(1)/CFS scheduler, ptrace, dynamic linker) whose kernel meters
//     CPU time simultaneously under the commodity tick-sampled scheme
//     and two fine-grained schemes;
//   - the paper's four victim workloads (O, Pi, Whetstone, Brute) as
//     genuine computations;
//   - all seven CPU-time inflation attacks of Section IV;
//   - the trustworthy metering layer of Section VI-B: TPM-attested
//     code-identity measurement, interference counters, and a
//     customer-side auditor;
//   - experiment runners that regenerate every figure of the paper's
//     evaluation.
//
// Quick start:
//
//	out, err := cpumeter.Meter(cpumeter.JobSpec{Workload: "W"})
//	fig, err := cpumeter.Reproduce("figure7", cpumeter.Options{})
//	fmt.Print(fig.Render())
package cpumeter

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/attacks"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/guest"
	"repro/internal/integrity"
	"repro/internal/kernel"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Re-exported building blocks. The aliases keep downstream code on
// one import while the implementation stays in internal packages.
type (
	// Options configures an experiment campaign (seed, CPU clock,
	// timer HZ, scheduler policy, RAM size, scale).
	Options = experiments.Options
	// Figure is a regenerated evaluation artifact with a Render
	// method producing the plain-text chart or table.
	Figure = experiments.Figure
	// RunSpec describes a single victim/attack execution.
	RunSpec = experiments.RunSpec
	// RunOut is a single execution's harvest.
	RunOut = experiments.RunOut
	// Attack is one CPU-time inflation technique.
	Attack = attacks.Attack
	// Report is the provider's attested usage report.
	Report = core.Report
	// Auditor verifies reports on the customer's behalf.
	Auditor = core.Auditor
	// Verdict is an audit outcome.
	Verdict = core.Verdict
	// Profile is the customer's reference expectation for a job.
	Profile = core.Profile
	// Manifest is the customer's code-identity allow-list.
	Manifest = integrity.Manifest
	// PID identifies a simulated process.
	PID = proc.PID

	// Frame is one addressed fabric frame: Src/Dst fabric addresses,
	// a flow id, a payload size, and the ECN/CE/ECE bits.
	Frame = cluster.Frame
	// FabricAddr is a machine's fabric address (machine i of a
	// cluster is addressed i+1).
	FabricAddr = cluster.Addr
	// REDSpec parameterises a link's RED/ECN queue-feedback policy.
	REDSpec = cluster.REDSpec
	// RouteSpec installs one static multi-hop routing-table entry.
	RouteSpec = cluster.RouteSpec

	// Cluster is a set of machines advancing in deterministic
	// lockstep virtual time, joined by modeled network links.
	Cluster = cluster.Cluster
	// ClusterConfig assembles a Cluster.
	ClusterConfig = cluster.Config
	// ClusterMachineSpec declares one cluster member.
	ClusterMachineSpec = cluster.MachineSpec
	// ClusterLinkSpec declares one one-way link between machines.
	ClusterLinkSpec = cluster.LinkSpec
	// Link is a one-way network path between two machines' NICs.
	Link = cluster.Link
	// ClusterRunSpec describes one attacker-machine → victim-machines
	// flood scenario.
	ClusterRunSpec = experiments.ClusterRunSpec
	// ClusterVictim describes one victim machine in a flood scenario.
	ClusterVictim = experiments.ClusterVictim
	// ClusterOut is one cluster scenario's harvest.
	ClusterOut = experiments.ClusterOut
	// ClusterSharedSwapSpec couples machines' swap devices into one
	// physically shared device hosted by one machine.
	ClusterSharedSwapSpec = cluster.SharedSwapSpec
	// MultiFloodSpec describes N attacker machines converging on one
	// victim through a shared bottleneck wire.
	MultiFloodSpec = experiments.MultiFloodSpec
	// MultiFloodOut is one multi-attacker scenario's harvest.
	MultiFloodOut = experiments.MultiFloodOut
	// SwapFloodSpec describes a memory-hog neighbor machine
	// pressuring the swap device a victim host exports.
	SwapFloodSpec = experiments.SwapFloodSpec
	// SwapFloodOut is one shared-swap scenario's harvest.
	SwapFloodOut = experiments.SwapFloodOut
	// RouterFloodSpec describes attackers flooding a victim host
	// through a shared, billed router machine with a RED/ECN egress.
	RouterFloodSpec = experiments.RouterFloodSpec
	// RouterFloodOut is one routed-flood scenario's harvest.
	RouterFloodOut = experiments.RouterFloodOut
	// AckFlowConfig parameterises an ack-paced ECN transfer.
	AckFlowConfig = experiments.AckFlowConfig
	// AckFlowStats is an ack-paced transfer's harvest.
	AckFlowStats = experiments.AckFlowStats
	// FairFloodSpec describes an attacker and a well-behaved ECN flow
	// contending for one shared egress wire under a selectable
	// queueing discipline (FIFO or DRR).
	FairFloodSpec = experiments.FairFloodSpec
	// FairFloodOut is one shared-egress fairness scenario's harvest.
	FairFloodOut = experiments.FairFloodOut

	// FaultSpec is a machine's seeded syscall fault-injection table
	// (kernel.Config.Faults); SyscallFault is one entry.
	FaultSpec = kernel.FaultSpec
	// SyscallFault configures one syscall's injected errno and
	// parts-per-million probability.
	SyscallFault = kernel.SyscallFault
	// Errno is a guest-visible injected error number (EIO, EAGAIN,
	// ENOMEM).
	Errno = guest.Errno
	// FlapSpec schedules deterministic outage windows on one
	// direction of a cluster link.
	FlapSpec = cluster.FlapSpec
	// ChaosSpec is the fault overlay on a routed-flood scenario:
	// syscall fault injection, a scheduled router crash/reboot, and
	// egress link flap.
	ChaosSpec = experiments.ChaosSpec
	// ChaosFloodSpec describes one routed flood under a chaos
	// overlay.
	ChaosFloodSpec = experiments.ChaosFloodSpec
	// ChaosFloodOut is one chaos scenario's harvest, including every
	// link direction's conservation ledger.
	ChaosFloodOut = experiments.ChaosFloodOut
	// LinkAccounting is one link direction's conservation ledger
	// (Sent = Delivered + Dropped + Queued).
	LinkAccounting = experiments.LinkAccounting
)

// FaultPPMScale is the parts-per-million denominator fault
// probabilities are expressed in (1e6 = certain injection).
const FaultPPMScale = kernel.PPMScale

// KnownSyscallNames returns the closed set of syscall-class names, in
// sorted order, that fault specs and guest syscalls may use.
func KnownSyscallNames() []string { return kernel.KnownSyscallNames() }

// IsKnownSyscall reports whether name is in the syscall namespace.
func IsKnownSyscall(name string) bool { return kernel.IsKnownSyscall(name) }

// Queueing disciplines a link spec may select (LinkSpec.Qdisc and
// FairFloodSpec.Qdisc): FIFO is the default starvable wire, DRR the
// deficit-round-robin fair queue with per-flow byte quanta.
const (
	QdiscFIFO = cluster.QdiscFIFO
	QdiscDRR  = cluster.QdiscDRR
)

// DefaultQuantumBytes is DRR's per-flow byte quantum when a spec
// leaves it zero (one maximum-size Ethernet frame).
const DefaultQuantumBytes = cluster.DefaultQuantumBytes

// UnlimitedLinkPPS selects an idealised lossless infinite-rate wire
// in link and cluster specs (no serialisation gap, no queue, no
// drops) — the first cluster model's behaviour, which such a config
// replays bit-for-bit.
const UnlimitedLinkPPS = cluster.UnlimitedPPS

// DefaultLinkQueueDepth is a link direction's tail-drop queue bound
// in packets when a spec leaves it zero.
const DefaultLinkQueueDepth = cluster.DefaultQueueDepth

// MeterMultiFlood executes one N-attackers → one-victim bottleneck
// flood scenario in deterministic lockstep.
func MeterMultiFlood(spec MultiFloodSpec) (*MultiFloodOut, error) {
	return experiments.RunMultiFlood(spec)
}

// MeterSwapFlood executes one shared-swap pressure scenario (the
// cross-machine exception flood) in deterministic lockstep.
func MeterSwapFlood(spec SwapFloodSpec) (*SwapFloodOut, error) {
	return experiments.RunSwapFlood(spec)
}

// MeterFairFlood executes one shared-egress fairness scenario in
// deterministic lockstep: an attacker floods the same congested wire
// a well-behaved ECN flow needs, under the spec's queueing
// discipline — FIFO (starvable) or DRR (per-flow fair).
func MeterFairFlood(spec FairFloodSpec) (*FairFloodOut, error) {
	return experiments.RunFairFlood(spec)
}

// MeterRouterFlood executes one attackers → router → victim scenario
// in deterministic lockstep: the router is a real billed machine
// running cluster.Forwarder, and its egress wire applies RED/ECN
// queue feedback.
func MeterRouterFlood(spec RouterFloodSpec) (*RouterFloodOut, error) {
	return experiments.RunRouterFlood(spec)
}

// MeterChaosFlood executes one routed-flood scenario under a chaos
// overlay — seeded syscall faults on every machine, a scheduled
// mid-run router crash (and optional reboot), and egress link flap —
// in deterministic lockstep, harvesting every link's conservation
// ledger alongside the per-scheme bills.
func MeterChaosFlood(spec ChaosFloodSpec) (*ChaosFloodOut, error) {
	return experiments.RunChaosFlood(spec)
}

// Forwarder returns the store-and-forward router guest: spawn it on
// a cluster machine marked Service to turn that machine into a
// billed router (see cluster.Forwarder).
func Forwarder(lookup sim.Cycles) guest.Routine { return cluster.Forwarder(lookup) }

// DefaultForwardUs is a software router's default per-frame
// lookup/queue service in microseconds.
const DefaultForwardUs = cluster.DefaultForwardUs

// DefaultCPUHz is the simulated clock matching the paper's testbed
// (2.53 GHz).
const DefaultCPUHz = sim.DefaultCPUHz

// JobSpec describes one metering job for Meter.
type JobSpec struct {
	// Workload is one of "O" (loop), "P" (pi), "W" (whetstone),
	// "B" (brute-force MD5).
	Workload string
	// Attack optionally arms one attack against the job.
	Attack Attack
	// Options tune the machine; the zero value uses paper defaults
	// with Scale 1.0 (full-length runs). Set Scale ~0.01 for
	// second-long jobs.
	Options Options
}

// Meter executes one job on a fresh simulated machine, launched
// through the shell, metered under all three schemes in parallel.
func Meter(spec JobSpec) (*RunOut, error) {
	return experiments.Run(RunSpec{
		Opts:     spec.Options,
		Workload: spec.Workload,
		Attack:   spec.Attack,
	})
}

// MeterCluster executes one cross-machine flood scenario: an attacker
// machine's packet generator floods each victim machine's NIC over a
// modeled link, and every machine advances in deterministic lockstep.
func MeterCluster(spec ClusterRunSpec) (*ClusterOut, error) {
	return experiments.RunCluster(spec)
}

// NewCluster builds a bare machine cluster for custom multi-machine
// scenarios (spawn guests via each MachineSpec's Boot, then Run).
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// BuildReport produces the provider-side attested usage report for a
// finished run. scheme is "jiffy" (commodity billing) or
// cpumeter.TrustedScheme.
func BuildReport(out *RunOut, scheme, aikSeed, nonce string) (*Report, error) {
	if out.Machine == nil || out.VictimPID == 0 {
		return nil, fmt.Errorf("cpumeter: run carried no billed job")
	}
	return core.BuildReport(out.Machine, out.VictimPID, out.Spec.Workload, scheme, aikSeed, nonce)
}

// TrustedScheme is the billing scheme of the paper's proposed
// trustworthy meter (TSC-exact, process-aware attribution).
const TrustedScheme = core.TrustedBillingScheme

// LegacyScheme is the commodity tick-sampled billing scheme.
const LegacyScheme = core.LegacyBillingScheme

// ManifestFromReference harvests a code-identity allow-list from a
// clean reference run (trust-on-first-use on the customer's own
// platform).
func ManifestFromReference(out *RunOut) *Manifest {
	pairs := map[string]string{}
	for _, e := range out.Measurements {
		pairs[e.Name] = e.Digest
	}
	return integrity.NewManifest(pairs)
}

// AllAttacks returns a default-strength instance of each of the
// paper's attacks, in presentation order, for the given CPU clock.
func AllAttacks(freq sim.Hz) []Attack {
	if freq == 0 {
		freq = DefaultCPUHz
	}
	return attacks.All(freq)
}

// WorkloadKeys lists the victim programs in the paper's order.
func WorkloadKeys() []string {
	specs := workloads.Specs()
	keys := make([]string, len(specs))
	for i, s := range specs {
		keys[i] = s.Key
	}
	return keys
}

// experimentRunners maps artifact ids to their runners.
var experimentRunners = map[string]func(Options) (*Figure, error){
	"figure4":     experiments.Figure4,
	"figure5":     experiments.Figure5,
	"figure6":     experiments.Figure6,
	"figure7":     experiments.Figure7,
	"figure8":     experiments.Figure8,
	"figure9":     experiments.Figure9,
	"figure10":    experiments.Figure10,
	"figure11":    experiments.Figure11,
	"comparison":  experiments.ComparisonTable,
	"mitigation":  experiments.TrustedMitigation,
	"ablation1":   experiments.AblationTickRate,
	"ablation2":   experiments.AblationScheduler,
	"ablation3":   experiments.AblationIRQAccounting,
	"ablation4":   experiments.AblationDetector,
	"cluster":     experiments.ClusterFlood,
	"multiflood":  experiments.MultiAttackerFlood,
	"swapflood":   experiments.CrossMachineExceptionFlood,
	"routerflood": experiments.RouterFlood,
	"fairflood":   experiments.FairFlood,
	"chaosflood":  experiments.ChaosFlood,
}

// Experiments lists the regenerable artifact ids in a stable order.
func Experiments() []string {
	out := make([]string, 0, len(experimentRunners))
	for id := range experimentRunners {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Reproduce regenerates one evaluation artifact ("figure4" ...
// "figure11", "comparison", "mitigation", the ablations, or the
// cross-machine "cluster" flood scenario).
func Reproduce(id string, o Options) (*Figure, error) {
	run, ok := experimentRunners[id]
	if !ok {
		return nil, fmt.Errorf("cpumeter: unknown experiment %q (have %v)", id, Experiments())
	}
	return run(o)
}

// ArtifactRun is one regenerated artifact plus its host-side cost.
type ArtifactRun struct {
	ID      string
	Figure  *Figure
	Elapsed time.Duration
}

// ReproduceAll regenerates the given artifacts (nil or empty = every
// artifact), parallelizing across artifacts on top of each runner's
// own machine-level fan-out, both governed by o.Parallelism (zero =
// all cores; worst-case concurrent machines is the product of the two
// levels). Results are in input order and byte-identical to running
// each artifact sequentially, since every machine is seeded and
// self-contained.
func ReproduceAll(ids []string, o Options) ([]*Figure, error) {
	runs, err := ReproduceAllTimed(ids, o)
	if err != nil {
		return nil, err
	}
	figs := make([]*Figure, len(runs))
	for i, r := range runs {
		figs[i] = r.Figure
	}
	return figs, nil
}

// ReproduceAllTimed is ReproduceAll, additionally reporting each
// artifact's host wall-clock regeneration time (measured inside the
// worker, so it is meaningful even when artifacts run concurrently).
func ReproduceAllTimed(ids []string, o Options) ([]ArtifactRun, error) {
	if len(ids) == 0 {
		ids = Experiments()
	}
	// Validate up front so an unknown id fails fast and
	// deterministically, before any machine spins up.
	for _, id := range ids {
		if _, ok := experimentRunners[id]; !ok {
			return nil, fmt.Errorf("cpumeter: unknown experiment %q (have %v)", id, Experiments())
		}
	}

	runs := make([]ArtifactRun, len(ids))
	errs := make([]error, len(ids))
	experiments.RunIndexed(len(ids), o.Parallelism, func(i int) {
		start := time.Now()
		fig, err := Reproduce(ids[i], o)
		runs[i] = ArtifactRun{ID: ids[i], Figure: fig, Elapsed: time.Since(start)}
		errs[i] = err
	})

	// Report the earliest-declared failure, keeping error output as
	// deterministic as success output.
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("reproduce %s: %w", ids[i], err)
		}
	}
	return runs, nil
}

// NewMachine builds a bare simulated machine for custom scenarios
// (examples use this to spawn their own guests).
func NewMachine(cfg kernel.Config) *kernel.Machine { return kernel.New(cfg) }

// MachineConfig is the low-level machine configuration.
type MachineConfig = kernel.Config

// Checkpoint & fork: a paused machine (or a whole lockstep cluster)
// can be snapshotted into an immutable image and restored — any
// number of times — into independent copies that continue the
// identical history until their inputs diverge. This is the substrate
// behind shared-warmup campaigns: run one common prefix, fork the
// image into every variant.
type (
	// Cycles is virtual time in CPU cycles.
	Cycles = sim.Cycles
	// Machine is the simulated machine (see NewMachine).
	Machine = kernel.Machine
	// MachineImage is one machine's checkpoint (Machine.Snapshot).
	MachineImage = kernel.MachineImage
	// MachinePool recycles finished machines' scaffolding across
	// RestoreMachine calls; not safe for concurrent use.
	MachinePool = kernel.Pool
	// ClusterImage is a whole fabric's checkpoint (Cluster.Snapshot).
	ClusterImage = cluster.ClusterImage
	// ForkLabSpec parameterises the checkpointable fork-lab scenario.
	ForkLabSpec = experiments.ForkLabSpec
	// ForkLabOut is a finished fork-lab run's deterministic outcome.
	ForkLabOut = experiments.ForkLabOut
)

// ErrNotSnapshottable reports a machine (or cluster) that cannot be
// checkpointed: goroutine-driver guests, forkless step guests, or a
// cluster member already finished, crashed, or rebooted.
var ErrNotSnapshottable = kernel.ErrNotSnapshottable

// DefaultForkLabWarmup is the fork lab's default mid-run checkpoint
// barrier.
const DefaultForkLabWarmup = experiments.DefaultForkLabWarmup

// SnapshotMachine checkpoints a paused machine into an immutable,
// reusable image.
func SnapshotMachine(m *kernel.Machine) (*MachineImage, error) { return m.Snapshot() }

// RestoreMachine rebuilds an independent machine from an image; the
// image remains valid for further restores.
func RestoreMachine(img *MachineImage) (*kernel.Machine, error) { return kernel.Restore(img) }

// ForkMachine snapshots and restores in one step: the copy continues
// the identical history until its inputs diverge from the original's.
func ForkMachine(m *kernel.Machine) (*kernel.Machine, error) { return m.Fork() }

// RestoreCluster rebuilds an independent lockstep fabric from a
// cluster image.
func RestoreCluster(img *ClusterImage) (*Cluster, error) { return cluster.Restore(img) }

// BuildForkLab constructs the fork-lab machine: the fully
// checkpointable micro-scenario behind meterlab's snapshot/resume
// verbs and the shared-warmup campaign benchmark.
func BuildForkLab(spec ForkLabSpec) (*kernel.Machine, error) {
	return experiments.BuildForkLab(spec)
}

// HarvestForkLab digests a finished fork-lab machine.
func HarvestForkLab(m *kernel.Machine) *ForkLabOut { return experiments.HarvestForkLab(m) }

// MeterForkLabCampaign runs the shared-warmup flood sweep: one warmup
// to the barrier (zero selects the default), forked into one variant
// per flood rate. Byte-identical to building each variant's machine
// from scratch; the warmup is just paid once.
func MeterForkLabCampaign(spec ForkLabSpec, warmup sim.Cycles, rates []uint64, parallelism int) ([]*ForkLabOut, error) {
	return experiments.RunForkLabCampaign(spec, warmup, rates, parallelism)
}
