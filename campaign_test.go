package cpumeter

import (
	"testing"
)

// TestReproduceAllParallelDeterminism asserts the campaign engine's
// core guarantee: rendering artifacts with an 8-way worker pool is
// byte-identical to sequential execution. Machines are seeded and
// self-contained and results aggregate in declaration order, so the
// schedule must not leak into the output.
func TestReproduceAllParallelDeterminism(t *testing.T) {
	ids := []string{"figure4", "figure7", "ablation1", "cluster", "multiflood", "swapflood", "routerflood"}
	opts := func(par int) Options {
		return Options{
			Seed:         7,
			Freq:         1_000_000_000,
			Scale:        0.02,
			PhysMemBytes: 32 << 20,
			Parallelism:  par,
		}
	}

	sequential, err := ReproduceAll(ids, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ReproduceAll(ids, opts(8))
	if err != nil {
		t.Fatal(err)
	}

	if len(sequential) != len(ids) || len(parallel) != len(ids) {
		t.Fatalf("lengths: sequential=%d parallel=%d want %d", len(sequential), len(parallel), len(ids))
	}
	for i, id := range ids {
		seq := sequential[i].Render()
		par := parallel[i].Render()
		if seq != par {
			t.Errorf("%s: parallel render diverged from sequential\n--- sequential ---\n%s--- parallel ---\n%s", id, seq, par)
		}
		if seq == "" {
			t.Errorf("%s: empty render", id)
		}
	}
}

// TestReproduceAllDefaultsToEveryArtifact checks the nil-ids
// convenience and input-order results.
func TestReproduceAllDefaultsToEveryArtifact(t *testing.T) {
	o := Options{Seed: 7, Freq: 1_000_000_000, Scale: 0.005, PhysMemBytes: 32 << 20}
	runs, err := ReproduceAllTimed(nil, o)
	if err != nil {
		t.Fatal(err)
	}
	want := Experiments()
	if len(runs) != len(want) {
		t.Fatalf("runs = %d, want %d", len(runs), len(want))
	}
	for i, r := range runs {
		if r.ID != want[i] {
			t.Errorf("runs[%d].ID = %s, want %s (input order must be preserved)", i, r.ID, want[i])
		}
		if r.Figure == nil {
			t.Errorf("%s: nil figure", r.ID)
		}
	}
}

// TestReproduceAllUnknownID asserts the fail-fast path.
func TestReproduceAllUnknownID(t *testing.T) {
	_, err := ReproduceAll([]string{"figure4", "nope"}, Options{Scale: 0.005})
	if err == nil {
		t.Fatal("want error for unknown artifact id")
	}
}
