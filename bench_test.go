// Benchmarks regenerate every evaluation artifact of the paper, one
// testing.B per figure/table, and report the artifact's headline
// metric (inflation percentages, billed seconds) via ReportMetric so
// `go test -bench=.` doubles as the reproduction harness.
//
// Benchmarks run at BenchScale (1% of paper scale) so the full suite
// completes in minutes; `meterlab all -scale 1` produces the
// full-length numbers recorded in EXPERIMENTS.md.
package cpumeter

import (
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/guest"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// BenchScale is the victim/attack scale benchmarks run at.
const BenchScale = 0.01

func benchOpts() Options {
	return Options{Seed: 2010, Scale: BenchScale}
}

// inflationOf extracts victim billed inflation (attack vs normal)
// from a per-program bar figure, averaged over the four programs.
func inflationOf(fig *Figure) float64 {
	var sum float64
	var n int
	for i := 0; i+1 < len(fig.Bars); i += 2 {
		normal := fig.Bars[i].Total()
		attack := fig.Bars[i+1].Total()
		if normal > 0 {
			sum += (attack - normal) / normal * 100
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func benchFigure(b *testing.B, id string, metric func(*Figure) float64, unit string) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		fig, err := Reproduce(id, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = metric(fig)
	}
	b.ReportMetric(last, unit)
}

func BenchmarkFigure4ShellAttack(b *testing.B) {
	benchFigure(b, "figure4", inflationOf, "mean-inflation-%")
}

func BenchmarkFigure5CtorAttack(b *testing.B) {
	benchFigure(b, "figure5", inflationOf, "mean-inflation-%")
}

func BenchmarkFigure6Substitution(b *testing.B) {
	benchFigure(b, "figure6", inflationOf, "mean-inflation-%")
}

// schedulingGradient reports the victim's billed growth from the
// no-attack pair to the nice -20 pair.
func schedulingGradient(fig *Figure) float64 {
	// Bars alternate victim/Fork per group; first group is the
	// independent baseline.
	if len(fig.Bars) < 2 {
		return 0
	}
	base := fig.Bars[0].Total()
	last := fig.Bars[len(fig.Bars)-2].Total()
	if base == 0 {
		return 0
	}
	return (last - base) / base * 100
}

func BenchmarkFigure7SchedulingOnW(b *testing.B) {
	benchFigure(b, "figure7", schedulingGradient, "nice-20-inflation-%")
}

func BenchmarkFigure8SchedulingOnB(b *testing.B) {
	benchFigure(b, "figure8", schedulingGradient, "nice-20-inflation-%")
}

func BenchmarkFigure9Thrashing(b *testing.B) {
	benchFigure(b, "figure9", inflationOf, "mean-inflation-%")
}

func BenchmarkFigure10InterruptFlood(b *testing.B) {
	benchFigure(b, "figure10", inflationOf, "mean-inflation-%")
}

func BenchmarkFigure11ExceptionFlood(b *testing.B) {
	benchFigure(b, "figure11", inflationOf, "mean-inflation-%")
}

// rejectedCount counts REJECTED rows in a table artifact.
func rejectedCount(fig *Figure) float64 {
	var n float64
	for _, row := range fig.Rows {
		for _, cell := range row {
			if cell == "REJECTED" {
				n++
			}
		}
	}
	return n
}

func BenchmarkComparisonTable(b *testing.B) {
	benchFigure(b, "comparison", func(fig *Figure) float64 {
		return float64(len(fig.Rows))
	}, "attacks-compared")
}

func BenchmarkMitigationTable(b *testing.B) {
	benchFigure(b, "mitigation", rejectedCount, "attacks-rejected")
}

// lastColumnPct parses the last percentage column of a table.
func lastColumnPct(fig *Figure) float64 {
	if len(fig.Rows) == 0 {
		return 0
	}
	row := fig.Rows[len(fig.Rows)-1]
	for i := len(row) - 1; i >= 0; i-- {
		cell := strings.TrimSuffix(strings.TrimPrefix(row[i], "+"), "%")
		if v, err := strconv.ParseFloat(cell, 64); err == nil {
			return v
		}
	}
	return 0
}

func BenchmarkAblationTickRate(b *testing.B) {
	benchFigure(b, "ablation1", lastColumnPct, "hz1000-inflation-%")
}

func BenchmarkAblationScheduler(b *testing.B) {
	benchFigure(b, "ablation2", lastColumnPct, "cfs-inflation-%")
}

func BenchmarkAblationIRQAccounting(b *testing.B) {
	benchFigure(b, "ablation3", func(fig *Figure) float64 {
		return float64(len(fig.Rows))
	}, "schemes-compared")
}

func BenchmarkAblationDetector(b *testing.B) {
	benchFigure(b, "ablation4", func(fig *Figure) float64 {
		return float64(len(fig.Rows))
	}, "strengths-swept")
}

// BenchmarkMachineSteps measures raw simulator throughput: virtual
// seconds of a CPU-bound victim simulated per host second.
func BenchmarkMachineSteps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := Meter(JobSpec{Workload: "O", Options: benchOpts()})
		if err != nil {
			b.Fatal(err)
		}
		_ = out
	}
}

// BenchmarkClusterFlood regenerates the cross-machine flood artifact:
// three 3-machine clusters (baseline, 10k, 40k pps) advanced in
// deterministic lockstep, sharded across the worker pool. The metric
// is the commodity-billed host's inflation at 40k pps relative to its
// own no-flood bill.
func BenchmarkClusterFlood(b *testing.B) {
	benchFigure(b, "cluster", func(fig *Figure) float64 {
		// Bars: per host, [no flood, 10k, 40k]; the jiffy host leads.
		if len(fig.Bars) < 3 || fig.Bars[0].Total() == 0 {
			return 0
		}
		return (fig.Bars[2].Total() - fig.Bars[0].Total()) / fig.Bars[0].Total() * 100
	}, "40kpps-inflation-%")
}

// BenchmarkClusterBidirectional measures the bidirectional link
// machinery end to end: an ack-paced sender pushes a fixed transfer
// through a finite-capacity wire while the receiver's echo daemon
// acks every frame over the reverse direction, so each round trip
// exercises NetSend, the serialisation pipes, NetRxWait blocking, and
// the lockstep barrier. The metric is the sender's achieved rate in
// frames per virtual second — the number ack pacing actually shapes.
func BenchmarkClusterBidirectional(b *testing.B) {
	const frames = 2000
	const window = 16
	var achieved float64
	for i := 0; i < b.N; i++ {
		cl, err := NewCluster(ClusterConfig{
			Machines: []ClusterMachineSpec{
				{
					Config: kernel.Config{Seed: 2010, CPUHz: 1_000_000_000},
					Boot: func(_ *Cluster, m *kernel.Machine) error {
						_, err := m.Spawn(kernel.SpawnConfig{
							Name:    "sender",
							Content: "ack-paced pktgen v1",
							Body: func(ctx guest.Context) {
								sent, acked := uint64(0), uint64(0)
								for sent < frames {
									for sent < frames && sent < acked+window {
										//simlint:errno-ok fault-free benchmark guest; delivery is paced by the ack counter
										ctx.NetSend(guest.Frame{Dst: 2})
										sent++
									}
									acked = ctx.NetRxWait(acked)
								}
							},
						})
						return err
					},
				},
				{
					Config: kernel.Config{Seed: 2011, CPUHz: 1_000_000_000},
					Boot: func(_ *Cluster, m *kernel.Machine) error {
						_, err := m.Spawn(kernel.SpawnConfig{
							Name:    "echod",
							Content: "echod v1",
							Body: func(ctx guest.Context) {
								seen, acked := uint64(0), uint64(0)
								for acked < frames {
									seen = ctx.NetRxWait(seen)
									for acked < seen {
										//simlint:errno-ok fault-free benchmark guest; delivery is paced by the ack counter
										ctx.NetSend(guest.Frame{Dst: 1})
										acked++
									}
								}
							},
						})
						return err
					},
				},
			},
			Links: []ClusterLinkSpec{{From: 0, To: 1, LatencyUs: 250, PacketsPerSecond: cluster.DefaultLinkPPS}},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := cl.Run(); err != nil {
			b.Fatal(err)
		}
		elapsed := cl.Machine(0).Clock().Seconds(cl.Machine(0).Clock().Now())
		achieved = frames / elapsed
	}
	b.ReportMetric(achieved, "acked-frames/vsec")
}

// BenchmarkRouterFlood regenerates the routed-fabric artifact: three
// 5-machine clusters (silent, 10k, 20k pps per attacker) where every
// victim-bound frame crosses a billed router machine and the egress
// wire runs RED/ECN. The metric is the router forwarding daemon's
// jiffy bill at the top rate — the cross-machine distortion the
// scenario exists to show.
func BenchmarkRouterFlood(b *testing.B) {
	benchFigure(b, "routerflood", func(fig *Figure) float64 {
		// Bars alternate router-fwd/victim-host per rate; the last
		// router-fwd bar is the top-rate bill.
		if len(fig.Bars) < 2 {
			return 0
		}
		return fig.Bars[len(fig.Bars)-2].Total()
	}, "router-bill-sec")
}

// BenchmarkFairFlood regenerates the qdisc-fairness artifact: three
// 3-machine clusters (FIFO quiet, FIFO flooded, DRR flooded) sharing
// one byte-accurate egress pipe. The metric is the ECN flow's
// completion time under DRR while MTU junk floods the same wire —
// the bounded latency the fair queue exists to provide.
func BenchmarkFairFlood(b *testing.B) {
	benchFigure(b, "fairflood", func(fig *Figure) float64 {
		// Bars alternate flow-done/victim-bill per config; the last
		// flow-done bar is the DRR-under-flood completion time.
		if len(fig.Bars) < 2 {
			return 0
		}
		return fig.Bars[len(fig.Bars)-2].Total()
	}, "drr-flow-done-sec")
}

// BenchmarkChaosFlood regenerates the billing-integrity artifact:
// four 5-machine clusters (healthy, 2% syscall faults, router crash,
// crash+reboot+flap) whose every run must keep each link's
// conservation ledger balanced. The metric is the router's cumulative
// jiffy bill in the crash+reboot scenario — the last router-fwd bar —
// the number the crash machinery must keep monotone.
func BenchmarkChaosFlood(b *testing.B) {
	benchFigure(b, "chaosflood", func(fig *Figure) float64 {
		// Bars alternate router-fwd/victim-host per scenario; the last
		// router-fwd bar is the crash+reboot+flap cumulative bill.
		if len(fig.Bars) < 2 {
			return 0
		}
		return fig.Bars[len(fig.Bars)-2].Total()
	}, "router-bill-sec")
}

// BenchmarkMachineStepsDriver races the two guest drivers on an
// identical resumable guest — a long compute/sleep alternation — so
// the flyweight driver's saving (no goroutine handoff per request, no
// parked stack) shows up directly as ns/op and B/op deltas against
// the goroutine driver running the very same state machine through
// guest.StepRoutine.
func BenchmarkMachineStepsDriver(b *testing.B) {
	const iters = 50_000
	driver := func(flyweight bool) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := kernel.New(kernel.Config{Seed: 2010, CPUHz: 1_000_000_000})
				var n uint64
				var step guest.Step
				step = func(ctx guest.Context, _ guest.Resume) guest.Step {
					if n >= iters {
						return nil
					}
					n++
					if n%2 == 0 {
						ctx.Compute(50_000)
					} else {
						ctx.Sleep(50_000)
					}
					return step
				}
				sc := kernel.SpawnConfig{Name: "stepper", Content: "steady stepper v1"}
				if flyweight {
					sc.Step = step
				} else {
					sc.Body = guest.StepRoutine(step)
				}
				if _, err := m.Spawn(sc); err != nil {
					b.Fatal(err)
				}
				if err := m.Run(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("flyweight", driver(true))
	b.Run("goroutine", driver(false))
}

// BenchmarkResidentMachines measures whole-fleet residency: 10k idle
// simulated machines, each hosting one resumable idler guest, all
// stepped through a few idle ticks, reported as resident bytes (heap
// plus goroutine stacks — a parked guest's stack lives in StackInuse,
// not HeapAlloc) per machine. Under the flyweight driver a resident
// guest is a few words of struct state, so the per-machine figure is
// the machine model itself (~6 KB of scheduler arrays, accountants,
// devices) plus per-process billing metadata; the goroutine sub-bench
// pays a parked ~8 KB-class stack per guest on top — the cost the
// flyweight driver exists to delete.
func BenchmarkResidentMachines(b *testing.B) {
	const residents = 10_000
	fleet := func(flyweight bool) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var before, after runtime.MemStats
				runtime.GC()
				runtime.ReadMemStats(&before)
				machines := make([]*kernel.Machine, residents)
				for j := range machines {
					m := kernel.New(kernel.Config{Seed: int64(2010 + j), CPUHz: 1_000_000_000})
					var step guest.Step
					step = func(ctx guest.Context, _ guest.Resume) guest.Step {
						ctx.Sleep(1_000_000)
						return step
					}
					sc := kernel.SpawnConfig{Name: "idler", Content: "resident idler v1"}
					if flyweight {
						sc.Step = step
					} else {
						sc.Body = guest.StepRoutine(step)
					}
					if _, err := m.Spawn(sc); err != nil {
						b.Fatal(err)
					}
					machines[j] = m
				}
				for tick := sim.Cycles(1); tick <= 4; tick++ {
					for _, m := range machines {
						if _, err := m.RunUntil(tick * 250_000); err != nil {
							b.Fatal(err)
						}
					}
				}
				runtime.GC()
				runtime.ReadMemStats(&after)
				resident := float64(after.HeapAlloc-before.HeapAlloc) +
					float64(after.StackInuse) - float64(before.StackInuse)
				b.ReportMetric(resident/residents, "B/machine")
				for _, m := range machines {
					m.Shutdown()
				}
			}
		}
	}
	b.Run("flyweight", fleet(true))
	b.Run("goroutine", fleet(false))
}

// BenchmarkMeterAllocs pins the allocation footprint of one metered
// job: machine construction plus the whole steady-state loop. The
// loop itself (compute slices, ticks, library calls, malloc/free,
// page touches, sleeps, disk completions) is designed to allocate
// nothing — event free lists, reusable callbacks, recycled guest
// requests, and a recycling malloc — so B/op here is dominated by
// one-time setup and must not grow with job length. Seed-tree
// baseline: ~90 KB/op, ~900 allocs/op.
func BenchmarkMeterAllocs(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Meter(JobSpec{Workload: "O", Options: benchOpts()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignAll regenerates every artifact through the
// parallel campaign engine at BenchScale — the whole-suite wall-time
// figure the per-figure benchmarks cannot show.
func BenchmarkCampaignAll(b *testing.B) {
	var artifacts float64
	for i := 0; i < b.N; i++ {
		runs, err := ReproduceAllTimed(nil, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		artifacts = float64(len(runs))
	}
	b.ReportMetric(artifacts, "artifacts")
}

// BenchmarkForkedCampaign pins the shared-warmup campaign path: one
// fork-lab warmup checkpointed and forked into every variant, against
// building and warming each variant's machine from scratch. Both
// paths produce byte-identical results (TestForkedCampaignMatches-
// FreshBuilds in internal/experiments); the forked path just pays the
// warmup once per campaign instead of once per variant. The image
// sub-benchmark reports the checkpoint's resident heap size.
func BenchmarkForkedCampaign(b *testing.B) {
	spec := ForkLabSpec{Seed: 2010}
	rates := []uint64{10_000, 20_000, 40_000, 80_000}
	// The barrier sits deep in the run — the regime the shared-warmup
	// path exists for: a long common prefix (here ~90% of the
	// default-spec history, most of it the churn guest thrashing
	// through swap) swept by short divergent tails. A shallow barrier
	// shares too little to beat the per-variant restore cost.
	const warmup = Cycles(250_000_000)
	b.Run("forked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := MeterForkLabCampaign(spec, warmup, rates, 1); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(rates)), "variants")
	})
	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, pps := range rates {
				m, err := BuildForkLab(spec)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.RunUntil(warmup); err != nil {
					b.Fatal(err)
				}
				m.NIC().StartFlood(pps)
				if err := m.Run(); err != nil {
					b.Fatal(err)
				}
				HarvestForkLab(m)
				m.Shutdown()
			}
		}
		b.ReportMetric(float64(len(rates)), "variants")
	})
	b.Run("image", func(b *testing.B) {
		m, err := BuildForkLab(spec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.RunUntil(warmup); err != nil {
			b.Fatal(err)
		}
		defer m.Shutdown()
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		imgs := make([]*MachineImage, b.N)
		for i := range imgs {
			img, err := SnapshotMachine(m)
			if err != nil {
				b.Fatal(err)
			}
			imgs[i] = img
		}
		runtime.GC()
		runtime.ReadMemStats(&after)
		b.ReportMetric((float64(after.HeapAlloc)-float64(before.HeapAlloc))/float64(b.N), "B/image")
		runtime.KeepAlive(imgs)
	})
}
