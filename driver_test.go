package cpumeter

import (
	"testing"
)

// TestDriverEquivalenceAllArtifacts pins the flyweight port's core
// guarantee: every registered artifact renders byte-identically
// whether the ported hot-path guests (flood sources, ack-paced flows,
// forwarding and echo daemons) run on the default flyweight
// resumable-step driver or on the compat goroutine driver. The two
// drivers share one guest source — the state machines — so any
// divergence here is an engine bug, not a port bug.
func TestDriverEquivalenceAllArtifacts(t *testing.T) {
	opts := func(goroutines bool) Options {
		return Options{
			Seed:            7,
			Freq:            1_000_000_000,
			Scale:           0.01,
			PhysMemBytes:    32 << 20,
			GoroutineGuests: goroutines,
		}
	}
	ids := Experiments()
	flyweight, err := ReproduceAll(ids, opts(false))
	if err != nil {
		t.Fatal(err)
	}
	goroutine, err := ReproduceAll(ids, opts(true))
	if err != nil {
		t.Fatal(err)
	}
	if len(flyweight) != len(ids) || len(goroutine) != len(ids) {
		t.Fatalf("lengths: flyweight=%d goroutine=%d want %d", len(flyweight), len(goroutine), len(ids))
	}
	for i, id := range ids {
		fw := flyweight[i].Render()
		gr := goroutine[i].Render()
		if fw == "" {
			t.Errorf("%s: empty render", id)
		}
		if fw != gr {
			t.Errorf("%s: drivers diverged\n--- flyweight ---\n%s--- goroutine ---\n%s", id, fw, gr)
		}
	}
}
